"""Command-line interface.

Exposes the library's main workflows on edge-list files or the synthetic
catalog, so the system is usable without writing Python::

    python -m repro datasets
    python -m repro generate facebook --out stream.tsv --scale 0.5
    python -m repro characteristics facebook --scale 0.3
    python -m repro truth stream.tsv --delta-offset 1
    python -m repro topk stream.tsv --selector MMSD --m 40 --k 25
    python -m repro experiment table5 --scale 0.25
    python -m repro validate dirty.tsv
    python -m repro sanitize dirty.tsv --out clean.tsv --quarantine-dir q/
    python -m repro quarantine replay q/ --policy deletion=repair

Graph inputs: a catalog name (``actors``, ``internet``, ``facebook``,
``dblp``) or a path to an edge-list file — timestamped TSV
(``time<TAB>u<TAB>v[<TAB>w]``) or plain ``u v`` lines in arrival order.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.pairs import (
    _resolve_engine,
    converging_pairs_at_threshold,
    delta_histogram,
    top_k_converging_pairs,
)
from repro.datasets import catalog, io
from repro.datasets.splits import EVAL_SPLIT
from repro.graph.dynamic import TemporalGraph
from repro.selection import available_selectors, get_selector


class CLIError(Exception):
    """A user-input problem (bad path, unknown name, malformed flag).

    Rendered by :func:`main` as a one-line ``error: ...`` message with
    exit code 2; internal failures keep their traceback and exit code 1.
    """


def _sniff_is_stream(path: Path) -> Optional[bool]:
    """Whether the first data line looks timestamped-TSV.

    ``None`` means the file holds no data lines at all.  Decoding is
    lenient here — undecodable bytes are the sanitizer's problem, not
    the sniffer's.
    """
    with path.open("rb") as fh:
        for bline in fh:
            line = bline.decode("utf-8", errors="replace").strip()
            if line and not line.startswith("#"):
                return len(line.split("\t")) >= 3
    return None


def _load_input(source: str, scale: float, seed: Optional[int]) -> TemporalGraph:
    """A catalog name or an edge-list path -> TemporalGraph."""
    if source.lower() in catalog.DATASETS:
        return catalog.load(source, scale=scale, seed=seed)
    path = Path(source)
    if not path.exists():
        raise CLIError(
            f"{source!r} is neither a catalog dataset "
            f"({', '.join(catalog.dataset_names())}) nor an existing file"
        )
    try:
        is_stream = _sniff_is_stream(path)
        if is_stream is None:
            raise CLIError(f"{source!r} contains no edges")
        if is_stream:
            return io.read_edge_stream(path)
        return io.read_edge_list(path)
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        # Unreadable or malformed input is the user's to fix, not a bug.
        raise CLIError(f"cannot read {source!r}: {exc}") from exc


def _parse_policies(specs) -> Optional[dict]:
    """Repeated ``--policy rule=mode`` flags -> an overrides mapping."""
    if not specs:
        return None
    overrides = {}
    for spec in specs:
        rule, sep, mode = spec.partition("=")
        if not sep or not rule.strip() or not mode.strip():
            raise CLIError(
                f"--policy expects rule=mode (e.g. deletion=quarantine), "
                f"got {spec!r}"
            )
        overrides[rule.strip()] = mode.strip()
    return overrides


def _read_sanitized(path: Path, sanitizer) -> TemporalGraph:
    """Load either on-disk format through a sanitizer; errors -> CLIError."""
    from repro.ingest import IngestError

    if not path.exists():
        raise CLIError(f"no such file: {path}")
    try:
        is_stream = _sniff_is_stream(path)
        if is_stream is False:
            return io.read_edge_list(path, sanitizer=sanitizer)
        # Empty files go through the stream reader: zero lines, clean.
        return io.read_edge_stream(path, sanitizer=sanitizer)
    except OSError as exc:
        raise CLIError(f"cannot read {path}: {exc}") from exc
    except IngestError as exc:
        # A strict-policy rejection: the data's problem, located.
        raise CLIError(f"{path}: {exc}") from exc


def _snapshots(temporal: TemporalGraph, split: float):
    return temporal.snapshot_pair(split, 1.0)


def _print_pairs(pairs, limit: int) -> None:
    print(f"{'u':>8}  {'v':>8}  {'d_t1':>5}  {'d_t2':>5}  {'Δ':>4}")
    for p in pairs[:limit]:
        print(f"{p.u!s:>8}  {p.v!s:>8}  {p.d1:>5g}  {p.d2:>5g}  {p.delta:>4g}")
    if len(pairs) > limit:
        print(f"... {len(pairs) - limit} more")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_datasets(args) -> int:
    for spec in catalog.DATASETS.values():
        print(f"{spec.name:10s} {spec.description}  [{spec.paper_dataset}]")
    return 0


def cmd_selectors(args) -> int:
    for name in available_selectors():
        print(name)
    return 0


def cmd_generate(args) -> int:
    temporal = catalog.load(args.dataset, scale=args.scale, seed=args.seed)
    io.write_edge_stream(temporal, args.out)
    print(f"wrote {temporal.num_events} events to {args.out}")
    return 0


def cmd_characteristics(args) -> int:
    temporal = _load_input(args.input, args.scale, args.seed)
    chars = catalog.characteristics(temporal, split=(args.split, 1.0))
    width = max(len(k) for k in chars)
    for key, value in chars.items():
        print(f"{key:<{width}}  {value:g}")
    return 0


def cmd_truth(args) -> int:
    temporal = _load_input(args.input, args.scale, args.seed)
    g1, g2 = _snapshots(temporal, args.split)
    if args.prune and _resolve_engine(g1, g2, args.engine) == "dict":
        raise CLIError(
            "--prune requires an unweighted engine (csr/incremental); "
            "this input resolves to the dict engine"
        )
    if args.k is not None:
        pairs = top_k_converging_pairs(
            g1, g2, k=args.k, engine=args.engine, prune=args.prune
        )
    else:
        hist = delta_histogram(g1, g2, engine=args.engine)
        positive = [d for d in hist if d > 0]
        if not positive:
            print("no converging pairs")
            return 0
        delta = max(1, max(positive) - args.delta_offset)
        pairs = converging_pairs_at_threshold(
            g1, g2, delta, engine=args.engine, prune=args.prune
        )
        print(f"δ = {delta:g} (Δmax = {max(positive):g}), k = {len(pairs)}")
    _print_pairs(pairs, args.limit)
    return 0


def cmd_train(args) -> int:
    from repro.ml import save_model, train_local_classifier

    temporal = _load_input(args.input, args.scale, args.seed)
    model = train_local_classifier(
        temporal, num_landmarks=args.landmarks, seed=args.seed or 0
    )
    save_model(model, args.out)
    print(
        f"trained local classifier on {args.input} "
        f"(positive fraction {model.positive_fraction:.3f}); "
        f"saved to {args.out}"
    )
    return 0


def _build_cli_selector(args):
    if args.model is not None:
        from repro.ml import load_model
        from repro.selection import (
            GlobalClassifierSelector,
            LocalClassifierSelector,
        )

        model = load_model(args.model)
        if model.uses_graph_features:
            return GlobalClassifierSelector(model)
        return LocalClassifierSelector(model)
    try:
        try:
            return get_selector(args.selector, num_landmarks=args.landmarks)
        except TypeError:
            return get_selector(args.selector)
    except KeyError as exc:
        # get_selector's message lists the known names.
        raise CLIError(exc.args[0]) from None


def _check_workers(workers: int) -> int:
    """Validate a ``--workers`` value (returns it for chaining)."""
    if workers < 1:
        raise CLIError(f"--workers must be >= 1, got {workers}")
    return workers


def cmd_topk(args) -> int:
    temporal = _load_input(args.input, args.scale, args.seed)
    g1, g2 = _snapshots(temporal, args.split)
    selector = _build_cli_selector(args)
    result = find_top_k_converging_pairs(
        g1, g2, k=args.k, m=args.m, selector=selector, seed=args.seed or 0,
        workers=_check_workers(args.workers),
    )
    print(
        f"budget: {result.budget.spent}/{result.budget.limit} SSSPs "
        f"{result.budget.by_phase()}"
    )
    print(f"candidates ({len(result.candidates)}): "
          f"{', '.join(str(c) for c in result.candidates[:15])}"
          f"{' ...' if len(result.candidates) > 15 else ''}")
    _print_pairs(result.pairs, args.limit)
    return 0


def _parse_checkpoints(spec: str) -> list:
    """``"0.5,0.75,1.0"`` -> fractions; malformed input is a CLIError."""
    try:
        checkpoints = [float(c) for c in spec.split(",") if c.strip()]
    except ValueError as exc:
        raise CLIError(f"bad --checkpoints list {spec!r}: {exc}") from None
    if len(checkpoints) < 2:
        raise CLIError(
            f"--checkpoints needs at least two fractions, got {spec!r}"
        )
    return checkpoints


def _retry_policy(args, seed: int):
    from repro.resilience import RetryPolicy

    if args.deadline_s is not None and args.deadline_s <= 0:
        raise CLIError(
            f"--deadline-s must be positive, got {args.deadline_s:g}"
        )
    if args.max_retries <= 0:
        return None
    return RetryPolicy(max_retries=args.max_retries, seed=seed)


def _checkpoint_store(args):
    from repro.resilience import CheckpointStore

    if args.checkpoint_dir is None:
        if args.resume:
            raise CLIError("--resume requires --checkpoint-dir")
        return None
    return CheckpointStore(args.checkpoint_dir)


def cmd_monitor(args) -> int:
    from repro.core.monitoring import ConvergenceMonitor

    temporal = _load_input(args.input, args.scale, args.seed)
    checkpoints = _parse_checkpoints(args.checkpoints)

    def selector_factory():
        return get_selector(args.selector)

    try:
        monitor = ConvergenceMonitor(
            temporal,
            selector_factory=selector_factory,
            k=args.k,
            m=args.m,
            seed=args.seed or 0,
            retry_policy=_retry_policy(args, args.seed or 0),
            deadline_s=args.deadline_s,
            on_error=args.on_error,
            on_invalid_window=args.on_invalid_window,
            checkpoint_store=_checkpoint_store(args),
            resume=args.resume,
        )
    except ValueError as exc:
        # The monitor validates its knob combinations (k/m bounds,
        # on_error / on_invalid_window modes); a rejected combination is
        # user input, not a bug — exit 2, like every other flag error.
        raise CLIError(str(exc)) from None
    try:
        reports = monitor.run(checkpoints)
    except ValueError as exc:
        # Out-of-range / non-increasing fractions are user input errors.
        raise CLIError(str(exc)) from None
    for report in reports:
        window = f"{report.start_fraction:g} -> {report.end_fraction:g}"
        if not report.ok:
            print(f"window {window}: FAILED — {report.error}")
            continue
        best = report.pairs[0] if report.pairs else None
        headline = (
            f"best {best.pair} (Δ={best.delta:g})" if best else "no change"
        )
        resumed = " [resumed]" if report.resumed else ""
        print(
            f"window {window}: {len(report.pairs)} pairs, "
            f"{report.sp_spent} SSSPs — {headline}{resumed}"
        )
    movers = monitor.recurrent_nodes(min_windows=2)
    print(f"total SSSPs: {monitor.total_sp_spent()}")
    failed = monitor.failed_windows()
    if failed:
        print(f"failed windows: {len(failed)} (summaries are partial)")
    print(
        "recurrently converging nodes: "
        + (", ".join(str(u) for u in movers[:10]) if movers else "none")
    )
    return 0


def _chaos_hook_from_env():
    """``REPRO_CHAOS_KILL=<point>[:<n>]`` -> a SIGKILL-at-nth hook.

    The chaos acceptance suite sets this to die *mid-operation* (e.g.
    ``wal.append.mid:3``) and then asserts that a recovering run is
    byte-identical to an uninterrupted one.  Unset (production) means no
    hook at all.
    """
    import os
    import signal

    spec = os.environ.get("REPRO_CHAOS_KILL")
    if not spec:
        return None
    point, sep, nth_text = spec.partition(":")
    try:
        nth = int(nth_text) if sep else 1
    except ValueError:
        raise CLIError(
            f"bad REPRO_CHAOS_KILL spec {spec!r}: expected <point>[:<n>]"
        ) from None
    seen = {"count": 0}

    def hook(label: str) -> None:
        if label == point:
            seen["count"] += 1
            if seen["count"] >= nth:
                os.kill(os.getpid(), signal.SIGKILL)

    return hook


def _runtime_config_from_args(args):
    """Shared ``advance``/``serve``/``query`` flag validation."""
    from repro.runtime import RuntimeConfig

    if args.selector is not None:
        try:
            get_selector(args.selector)
        except (KeyError, ValueError) as exc:
            raise CLIError(str(exc)) from None
    if args.max_restarts < 0:
        raise CLIError(
            f"--max-restarts must be >= 0, got {args.max_restarts}"
        )
    try:
        return RuntimeConfig(
            k=args.k,
            batch_size=args.batch_size,
            checkpoint_every=args.checkpoint_every,
            selector=args.selector,
            m=args.m,
            seed=args.seed or 0,
        )
    except ValueError as exc:
        # The config validates its own knob combinations (k/batch
        # bounds, budgeted mode needing --m); a rejected combination is
        # user input — exit 2, like every other flag error.
        raise CLIError(str(exc)) from None


def _resource_guard_from_args(args):
    from repro.runtime import ResourceGuard

    if args.soft_memory_mb is None and args.soft_time_s is None:
        return None
    try:
        return ResourceGuard(
            soft_memory_mb=args.soft_memory_mb,
            soft_time_s=args.soft_time_s,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _runtime_from_args(args, *, guard=None, chaos=None):
    """Open (= recover) the stream runtime described by the flags."""
    from repro.runtime import (
        RuntimeRecoveryError,
        StreamRuntime,
        WALError,
    )

    config = _runtime_config_from_args(args)
    temporal = _load_input(args.input, args.scale, args.seed)
    try:
        return StreamRuntime(
            temporal,
            args.wal_dir,
            config,
            max_restarts=args.max_restarts,
            workers=_check_workers(args.workers),
            guard=guard,
            chaos=chaos,
        )
    except (WALError, RuntimeRecoveryError) as exc:
        # A WAL/checkpoint directory this run cannot safely resume from
        # is an operator-fixable state problem, not an internal bug.
        raise CLIError(str(exc)) from None


def cmd_advance(args) -> int:
    if args.max_batches is not None and args.max_batches < 1:
        raise CLIError(
            f"--max-batches must be >= 1, got {args.max_batches}"
        )
    runtime = _runtime_from_args(
        args,
        guard=_resource_guard_from_args(args),
        chaos=_chaos_hook_from_env(),
    )
    report = runtime.run(max_batches=args.max_batches)
    print(report.render(limit=args.limit))
    return 0


def _service_address(args):
    """``--socket`` / ``--host``+``--port`` flags -> a service address."""
    if args.socket is not None:
        return ("unix", str(args.socket))
    if args.port is None:
        raise CLIError("need --socket PATH or --port N to reach the service")
    return ("tcp", args.host, args.port)


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import canonical_json

    if args.status:
        from repro.service.client import ServiceClientError, one_shot

        address = _service_address(args)
        try:
            response = one_shot(address, "health")
        except (OSError, ServiceClientError) as exc:
            raise CLIError(f"cannot reach service: {exc}") from None
        print(canonical_json(response))
        return 0 if response.get("ok") else 1

    from repro.service import ConvergenceService

    if args.input is None:
        raise CLIError("serve needs an input stream (or --status)")
    if args.wal_dir is None:
        raise CLIError("serve needs --wal-dir (or --status)")
    if args.capacity < 1:
        raise CLIError(f"--capacity must be >= 1, got {args.capacity}")
    if args.advance_batches < 1:
        raise CLIError(
            f"--advance-batches must be >= 1, got {args.advance_batches}"
        )
    if args.socket is None and args.port is None:
        args.port = 0  # ephemeral TCP; the ready line carries the port
    address = _service_address(args)
    chaos = _chaos_hook_from_env()
    runtime = _runtime_from_args(args, chaos=chaos)
    service = ConvergenceService(
        runtime,
        capacity=args.capacity,
        advance_batches=args.advance_batches,
        guard=_resource_guard_from_args(args),
        chaos=chaos,
    )

    def ready(bound) -> None:
        print(
            canonical_json({"event": "ready", "address": list(bound)}),
            flush=True,
        )

    asyncio.run(service.serve(address, ready=ready))
    print(
        canonical_json({
            "event": "drained",
            "served": service.counters.served,
            "version": runtime.state_version,
        }),
        flush=True,
    )
    return 0


def cmd_query(args) -> int:
    from repro.service import ProtocolError, canonical_json, compute_answer

    runtime = _runtime_from_args(args)
    query_args = {}
    if args.query_k is not None:
        query_args["k"] = args.query_k
    if args.verb == "node":
        if args.u is None:
            raise CLIError("query node requires --u")
        query_args["u"] = _parse_node_id(args.u)
    try:
        result = compute_answer(runtime, args.verb, query_args)
    except ProtocolError as exc:
        raise CLIError(str(exc)) from None
    print(
        canonical_json({
            "result": result,
            "version": runtime.state_version,
        })
    )
    return 0


def _parse_node_id(text: str):
    """CLI node ids mirror the stream reader: integer-looking -> int."""
    try:
        return int(text)
    except ValueError:
        return text


def cmd_validate(args) -> int:
    """Dry-run the sanitizer and report stream health.

    Exit codes follow lint conventions: 0 = clean, 1 = issues found,
    2 = unreadable input.
    """
    from repro.ingest import Sanitizer

    sanitizer = Sanitizer(buffer_size=args.buffer_size)
    _read_sanitized(Path(args.input), sanitizer)
    report = sanitizer.report
    print(report.summary())
    return 0 if report.clean else 1


def cmd_sanitize(args) -> int:
    from repro.ingest import QuarantineStore, Sanitizer

    store = (
        QuarantineStore(args.quarantine_dir)
        if args.quarantine_dir is not None else None
    )
    try:
        sanitizer = Sanitizer(
            _parse_policies(args.policy),
            buffer_size=args.buffer_size,
            quarantine=store,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    temporal = _read_sanitized(Path(args.input), sanitizer)
    io.write_edge_stream(temporal, args.out)
    print(sanitizer.report.summary())
    print(f"wrote {temporal.num_events} events to {args.out}")
    if store is not None:
        print(
            f"quarantined {len(sanitizer.records)} record(s) "
            f"to {args.quarantine_dir}"
        )
    return 0


def cmd_quarantine(args) -> int:
    from repro.ingest import (
        QuarantineError,
        QuarantineStore,
        replay_quarantine,
    )

    if args.action == "show":
        try:
            run = QuarantineStore(args.dir).load()
        except QuarantineError as exc:
            raise CLIError(str(exc)) from None
        print(f"source      {run.source}")
        print(f"sha256      {run.source_sha256}")
        print(f"buffer_size {run.buffer_size}")
        print("policies    " + ", ".join(
            f"{name}={mode}" for name, mode in sorted(run.policies.items())
        ))
        print(f"records     {len(run.records)}")
        for rec in run.records[:args.limit]:
            print(f"  line {rec.lineno} [{rec.rule}] {rec.reason}")
        if len(run.records) > args.limit:
            print(f"  ... {len(run.records) - args.limit} more")
        return 0

    # replay
    try:
        temporal, sanitizer = replay_quarantine(
            args.dir, _parse_policies(args.policy)
        )
    except (QuarantineError, ValueError) as exc:
        raise CLIError(str(exc)) from None
    print(sanitizer.report.summary())
    if args.out is not None:
        io.write_edge_stream(temporal, args.out)
        print(f"wrote {temporal.num_events} events to {args.out}")
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def cmd_experiment(args) -> int:
    from repro.experiments import ExperimentConfig
    from repro.experiments import (
        figure1,
        figure2,
        figure3,
        table1,
        table2,
        table3,
        table5,
        table6,
    )

    modules = {
        "table1": table1, "table2": table2, "table3": table3,
        "table5": table5, "table6": table6, "figure1": figure1,
        "figure2": figure2, "figure3": figure3,
    }
    if args.name not in modules:
        raise CLIError(
            f"unknown experiment {args.name!r}; "
            f"choose from {', '.join(modules)}"
        )
    module = modules[args.name]
    overrides = {}
    if args.datasets is not None:
        from repro.datasets import catalog as _catalog

        names = [d.strip() for d in args.datasets.split(",") if d.strip()]
        unknown = [d for d in names if d not in _catalog.DATASETS]
        if unknown or not names:
            raise CLIError(
                f"unknown dataset(s) {', '.join(unknown) or args.datasets!r}; "
                f"choose from {', '.join(_catalog.dataset_names())}"
            )
        overrides["datasets"] = tuple(names)
    if args.checkpoint_dir is None and args.resume:
        raise CLIError("--resume requires --checkpoint-dir")
    if args.deadline_s is not None and args.deadline_s <= 0:
        raise CLIError(
            f"--deadline-s must be positive, got {args.deadline_s:g}"
        )
    config = ExperimentConfig(
        scale=args.scale,
        workers=_check_workers(args.workers),
        checkpoint_dir=(
            str(args.checkpoint_dir) if args.checkpoint_dir else None
        ),
        resume=args.resume,
        max_retries=args.max_retries,
        deadline_s=args.deadline_s,
        on_error=args.on_error,
        experiment=args.name,
        **overrides,
    )
    result = module.run(config)
    print(module.render(result))
    if args.json is not None:
        from repro.experiments.export import write_json

        write_json(result, args.json)
        print(f"wrote {args.json}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_input_options(sub, with_split=True) -> None:
    sub.add_argument("input", help="catalog dataset name or edge-list path")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="catalog scale factor (ignored for files)")
    sub.add_argument("--seed", type=int, default=None,
                     help="generator / selector seed")
    if with_split:
        sub.add_argument("--split", type=float, default=EVAL_SPLIT[0],
                         help="fraction of the stream forming G_t1 "
                              "(default 0.8)")


def _add_runtime_options(sub, wal_required: bool = True) -> None:
    """The streaming-runtime flags shared by advance/serve/query."""
    sub.add_argument("--wal-dir", type=Path, required=wal_required,
                     help="durable state root: the write-ahead log plus "
                          "the checkpoint store (see docs/runtime.md)")
    sub.add_argument("--k", type=int, default=10,
                     help="top-k pairs per window")
    sub.add_argument("--batch-size", type=int, default=8,
                     help="events per WAL-logged batch")
    sub.add_argument("--checkpoint-every", type=int, default=4,
                     help="batches per window close + checkpoint + "
                          "WAL compaction")
    sub.add_argument("--selector", default=None,
                     help="close windows with the budgeted algorithm "
                          "using this selector (default: exact top-k)")
    sub.add_argument("--m", type=int, default=0,
                     help="candidate budget for --selector windows")
    sub.add_argument("--workers", type=int, default=1,
                     help="process-pool workers for budgeted windows")
    sub.add_argument("--max-restarts", type=int, default=3,
                     help="lifetime window-computation restarts before "
                          "the supervisor gives up")


def _add_resilience_options(sub) -> None:
    """The long-run recovery flags shared by `experiment` and `monitor`."""
    sub.add_argument("--checkpoint-dir", type=Path, default=None,
                     help="persist each completed unit of work here "
                          "(atomic JSON records; see docs/resilience.md)")
    sub.add_argument("--resume", action="store_true",
                     help="reuse valid checkpoints from --checkpoint-dir "
                          "instead of recomputing completed units")
    sub.add_argument("--max-retries", type=int, default=0,
                     help="retries per unit (exponential backoff) before "
                          "the failure escalates (default 0)")
    sub.add_argument("--deadline-s", type=float, default=None,
                     help="per-unit deadline in seconds, checked between "
                          "retry attempts")
    sub.add_argument("--on-error", choices=("fail", "skip"), default="fail",
                     help="'fail' aborts on a unit failure; 'skip' records "
                          "it (cell rendered as —, window marked FAILED) "
                          "and continues")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Identifying converging pairs of nodes on a budget "
                    "(EDBT 2015 reproduction).",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    subs.add_parser("datasets", help="list the synthetic catalog").set_defaults(
        func=cmd_datasets
    )
    subs.add_parser("selectors", help="list candidate selectors").set_defaults(
        func=cmd_selectors
    )

    gen = subs.add_parser("generate", help="write a synthetic edge stream")
    gen.add_argument("dataset", choices=catalog.dataset_names())
    gen.add_argument("--out", required=True, type=Path)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=None)
    gen.set_defaults(func=cmd_generate)

    chars = subs.add_parser("characteristics",
                            help="Table 2-style dataset characteristics")
    _add_input_options(chars)
    chars.set_defaults(func=cmd_characteristics)

    truth = subs.add_parser("truth", help="exact top-k converging pairs")
    _add_input_options(truth)
    truth.add_argument("--k", type=int, default=None,
                       help="explicit k (default: δ-threshold rule)")
    truth.add_argument("--delta-offset", type=int, default=1,
                       help="δ = Δmax − offset when --k is absent")
    truth.add_argument("--limit", type=int, default=20,
                       help="pairs to print")
    truth.add_argument("--prune", action="store_true",
                       help="Δ-aware pruned traversals: skip or level-cut "
                            "t2 work that provably cannot change the "
                            "output (unweighted engines only; "
                            "byte-identical results)")
    truth.add_argument("--engine", default="auto",
                       choices=["auto", "incremental", "csr", "dict"],
                       help="ground-truth engine (auto: incremental "
                            "delta-BFS for unweighted snapshots)")
    truth.set_defaults(func=cmd_truth)

    topk = subs.add_parser("topk", help="budgeted top-k (Algorithm 1)")
    _add_input_options(topk)
    topk.add_argument("--selector", default="MMSD",
                      help="candidate selector (see `repro selectors`)")
    topk.add_argument("--m", type=int, default=40,
                      help="candidate budget (2m SSSPs total)")
    topk.add_argument("--k", type=int, default=20)
    topk.add_argument("--landmarks", type=int, default=10)
    topk.add_argument("--limit", type=int, default=20)
    topk.add_argument("--model", type=Path, default=None,
                      help="saved classifier model (.npz) — overrides "
                           "--selector with the matching classifier")
    topk.add_argument("--workers", type=int, default=1,
                      help="process-pool workers for the candidate SSSP "
                           "batch (1 = serial; results are identical)")
    topk.set_defaults(func=cmd_topk)

    train = subs.add_parser(
        "train", help="train and save a local classifier for a dataset"
    )
    _add_input_options(train, with_split=False)
    train.add_argument("--out", required=True, type=Path)
    train.add_argument("--landmarks", type=int, default=10)
    train.set_defaults(func=cmd_train)

    mon = subs.add_parser(
        "monitor", help="continuous monitoring over stream checkpoints"
    )
    _add_input_options(mon, with_split=False)
    mon.add_argument("--checkpoints", default="0.5,0.75,1.0",
                     help="comma-separated stream fractions")
    mon.add_argument("--selector", default="SumDiff")
    mon.add_argument("--k", type=int, default=15)
    mon.add_argument("--m", type=int, default=20)
    mon.add_argument("--on-invalid-window",
                     choices=("fail", "skip-and-log", "repair"),
                     default="fail",
                     help="what to do when a window's snapshot pair "
                          "violates the insertion-only model (e.g. the "
                          "stream carries a deletion): abort, skip the "
                          "window, or repair the later snapshot")
    _add_resilience_options(mon)
    mon.set_defaults(func=cmd_monitor)

    adv = subs.add_parser(
        "advance",
        help="crash-safe streaming advancement (WAL + checkpoints); "
             "re-running the same --wal-dir resumes exactly where the "
             "previous run stopped",
    )
    _add_input_options(adv, with_split=False)
    _add_runtime_options(adv)
    adv.add_argument("--max-batches", type=int, default=None,
                     help="stop (resumably) after this many new batches")
    adv.add_argument("--soft-memory-mb", type=float, default=None,
                     help="soft peak-RSS budget: checkpoint and shed "
                          "instead of running into the OOM killer")
    adv.add_argument("--soft-time-s", type=float, default=None,
                     help="soft elapsed-time budget: checkpoint and "
                          "shed when exceeded")
    adv.add_argument("--limit", type=int, default=5,
                     help="pairs to print per window")
    adv.set_defaults(func=cmd_advance)

    srv = subs.add_parser(
        "serve",
        help="always-on query service over a runtime --wal-dir: "
             "line-delimited JSON over TCP or a UNIX socket "
             "(see docs/service.md)",
    )
    srv.add_argument("input", nargs="?", default=None,
                     help="catalog dataset name or edge-list path "
                          "(not needed with --status)")
    srv.add_argument("--scale", type=float, default=1.0,
                     help="catalog scale factor (ignored for files)")
    srv.add_argument("--seed", type=int, default=None,
                     help="generator / selector seed")
    _add_runtime_options(srv, wal_required=False)
    srv.add_argument("--socket", type=Path, default=None,
                     help="serve on (or query) this UNIX socket path")
    srv.add_argument("--host", default="127.0.0.1",
                     help="TCP bind host (with --port)")
    srv.add_argument("--port", type=int, default=None,
                     help="TCP port (0 = ephemeral; the ready line "
                          "carries the bound port)")
    srv.add_argument("--capacity", type=int, default=64,
                     help="admission queue bound; arrivals past it are "
                          "rejected with code over_capacity")
    srv.add_argument("--advance-batches", type=int, default=1,
                     help="stream batches ingested per advance request")
    srv.add_argument("--soft-memory-mb", type=float, default=None,
                     help="soft peak-RSS budget: shed the queue, then "
                          "checkpoint")
    srv.add_argument("--soft-time-s", type=float, default=None,
                     help="soft elapsed-time budget: shed the queue, "
                          "then checkpoint")
    srv.add_argument("--status", action="store_true",
                     help="query a running service's health and exit")
    srv.set_defaults(func=cmd_serve)

    qry = subs.add_parser(
        "query",
        help="batch convergence query against a checkpointed --wal-dir "
             "(the differential oracle for `repro serve` answers)",
    )
    qry.add_argument("verb", choices=("topk", "node"),
                     help="global top-k pairs, or partners converging "
                          "toward one node")
    _add_input_options(qry, with_split=False)
    _add_runtime_options(qry)
    qry.add_argument("--query-k", type=int, default=None,
                     help="answer size (default: the runtime's k)")
    qry.add_argument("--u", default=None,
                     help="the focal node for `query node`")
    qry.set_defaults(func=cmd_query)

    val = subs.add_parser(
        "validate",
        help="dry-run the stream sanitizer and report health "
             "(exit 0 clean, 1 issues, 2 unreadable)",
    )
    val.add_argument("input", help="edge-stream or edge-list path")
    val.add_argument("--buffer-size", type=int, default=64,
                     help="timestamp reorder-buffer capacity (events)")
    val.set_defaults(func=cmd_validate)

    san = subs.add_parser(
        "sanitize",
        help="clean a dirty edge stream into a canonical TSV",
    )
    san.add_argument("input", help="edge-stream or edge-list path")
    san.add_argument("--out", required=True, type=Path,
                     help="where to write the sanitized stream")
    san.add_argument("--policy", action="append", default=None,
                     metavar="RULE=MODE",
                     help="per-rule policy override (repeatable), e.g. "
                          "--policy deletion=quarantine; rules: "
                          "self-loop, deletion, weight-increase, "
                          "duplicate, out-of-order, parse; modes: "
                          "strict, repair, quarantine")
    san.add_argument("--quarantine-dir", type=Path, default=None,
                     help="persist diverted events here (atomic, "
                          "checksummed; enables `repro quarantine`)")
    san.add_argument("--buffer-size", type=int, default=64,
                     help="timestamp reorder-buffer capacity (events)")
    san.set_defaults(func=cmd_sanitize)

    quar = subs.add_parser(
        "quarantine",
        help="inspect or replay a quarantine directory",
    )
    quar.add_argument("action", choices=("show", "replay"))
    quar.add_argument("dir", type=Path,
                      help="directory written by sanitize --quarantine-dir")
    quar.add_argument("--policy", action="append", default=None,
                      metavar="RULE=MODE",
                      help="policy overrides applied over the recorded "
                           "run configuration before replaying")
    quar.add_argument("--out", type=Path, default=None,
                      help="write the replayed sanitized stream here")
    quar.add_argument("--limit", type=int, default=10,
                      help="records to list under `show`")
    quar.set_defaults(func=cmd_quarantine)

    lint = subs.add_parser(
        "lint",
        help="check the determinism/budget invariants (reprolint)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    exp = subs.add_parser("experiment", help="run one paper artefact")
    exp.add_argument("name", help="table1/2/3/5/6 or figure1/2/3")
    exp.add_argument("--scale", type=float, default=0.5)
    exp.add_argument("--json", type=Path, default=None,
                     help="also write the raw result as JSON")
    exp.add_argument("--datasets", default=None,
                     help="comma-separated catalog subset to run "
                          "(default: all four)")
    exp.add_argument("--workers", type=int, default=1,
                     help="process-pool workers for independent coverage "
                          "cells (1 = serial; output is byte-identical "
                          "at any worker count)")
    _add_resilience_options(exp)
    exp.set_defaults(func=cmd_experiment)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    User-input problems (:class:`CLIError`) print one ``error:`` line
    and return 2; internal failures propagate with their traceback
    (exit code 1 when run as a script), so bugs stay loud.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
