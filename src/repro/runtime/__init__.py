"""Crash-safe streaming runtime.

Long-running advancement of snapshot state over a sanitized edge
stream: every accepted batch is WAL-logged before it is applied
(:mod:`~repro.runtime.wal`), windows of top-k converging pairs are
closed at checkpoint boundaries (:mod:`~repro.runtime.engine`), and the
failure paths are owned by dedicated components — bounded restarts
(:mod:`~repro.runtime.supervisor`), incremental-engine degradation
(:mod:`~repro.runtime.breaker`), and soft resource budgets
(:mod:`~repro.runtime.guards`).  See ``docs/runtime.md`` for the WAL
format, the recovery procedure, and the failure-mode matrix.
"""

from repro.runtime.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.runtime.engine import (
    AdvanceCallback,
    RuntimeConfig,
    RuntimeRecoveryError,
    RuntimeReport,
    StreamRuntime,
    WindowResult,
)
from repro.runtime.guards import ResourceGuard, peak_rss_mb
from repro.runtime.supervisor import (
    Heartbeat,
    HeartbeatMonitor,
    Supervisor,
    SupervisorGivingUp,
)
from repro.runtime.wal import WALError, WALRecord, WriteAheadLog

__all__ = [
    "AdvanceCallback",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "Heartbeat",
    "HeartbeatMonitor",
    "ResourceGuard",
    "RuntimeConfig",
    "RuntimeRecoveryError",
    "RuntimeReport",
    "StreamRuntime",
    "Supervisor",
    "SupervisorGivingUp",
    "WALError",
    "WALRecord",
    "WindowResult",
    "WriteAheadLog",
    "peak_rss_mb",
]
