"""The crash-safe streaming runtime: WAL-ahead snapshot advancement.

:class:`StreamRuntime` turns the library's batch pipeline into an
always-on service loop over a sanitized edge stream:

1. events are consumed in fixed-size batches, each batch durably
   appended to the :class:`~repro.runtime.wal.WriteAheadLog` *before*
   it touches in-memory state (write-ahead: an acknowledged batch can
   always be replayed, an unacknowledged one is re-read from the
   source);
2. every ``checkpoint_every`` batches close a **window**: the top-k
   converging pairs between the snapshot at the window's start and its
   end are computed — through the incremental delta-BFS engine while
   the :class:`~repro.runtime.breaker.CircuitBreaker` is closed, through
   the full-BFS fallback while it is open;
3. each closed window is followed by a checkpoint
   (:class:`~repro.resilience.checkpoint.CheckpointStore`) and WAL
   compaction, so recovery cost stays bounded.

**Recovery is the constructor**: opening a runtime on an existing
``--wal-dir`` loads the newest usable checkpoint and replays the WAL
suffix through the same window code path, which makes a killed-and-
restarted run produce *byte-identical* output to an uninterrupted one —
every window result is a pure function of (event prefix, config,
checkpointed breaker state), and all of those are restored exactly.

Failure handling is layered: window computation runs under a
:class:`~repro.runtime.supervisor.Supervisor` (bounded lifetime
restarts, then escalate); repair-engine failures feed the breaker
(degrading to full BFS, probing back); resource-budget breaches
(:class:`~repro.runtime.guards.ResourceGuard`) checkpoint-and-shed
instead of dying to the OOM killer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.pairs import ConvergingPair, top_k_converging_pairs
from repro.graph.dynamic import TemporalGraph
from repro.graph.graph import Graph
from repro.graph.validation import GraphValidationError, repair_snapshot_pair
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.events import log_event
from repro.resilience.faults import FaultInjector, InjectedFault
from repro.resilience.policy import RetryPolicy
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.guards import ResourceGuard
from repro.runtime.supervisor import Supervisor
from repro.runtime.wal import ChaosHook, WALError, WriteAheadLog
from repro.selection import get_selector

PathLike = Union[str, Path]

RUNTIME_SCHEMA_VERSION = 1

#: One event as stored in WAL/checkpoint payloads.
EventRow = List[Any]

#: Called after every window close: ``(state_version, window)``.  The
#: always-on service registers one to invalidate its version-keyed
#: result cache exactly when the runtime advances (docs/service.md).
AdvanceCallback = Callable[[int, "WindowResult"], None]


class RuntimeRecoveryError(RuntimeError):
    """The WAL/checkpoint pair cannot reconstruct a consistent state."""


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that *defines* a streaming run's results.

    Execution knobs that do not affect outputs (restart budget, worker
    count, fsync) live on :class:`StreamRuntime` itself — config here is
    exactly the part a recovered run must share with the original for
    byte-identical output.
    """

    k: int = 10
    batch_size: int = 8
    checkpoint_every: int = 4
    selector: Optional[str] = None
    m: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.selector is not None and self.m < 1:
            raise ValueError(
                f"budgeted mode needs m >= 1 candidates, got {self.m}"
            )

    @property
    def window_events(self) -> int:
        """Events per full window (``batch_size * checkpoint_every``)."""
        return self.batch_size * self.checkpoint_every


@dataclass(frozen=True)
class WindowResult:
    """One closed window: its extent, engine, and ranked pairs."""

    index: int
    start: int
    end: int
    engine: str
    pairs: Tuple[ConvergingPair, ...]

    def to_payload(self) -> dict:
        """JSON-stable form for checkpoints."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "engine": self.engine,
            "pairs": [[p.u, p.v, p.d1, p.d2] for p in self.pairs],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WindowResult":
        """Rebuild from a checkpoint payload row."""
        return cls(
            index=int(payload["index"]),
            start=int(payload["start"]),
            end=int(payload["end"]),
            engine=str(payload["engine"]),
            pairs=tuple(
                ConvergingPair(row[0], row[1], row[2], row[3])
                for row in payload["pairs"]
            ),
        )


@dataclass
class RuntimeReport:
    """What one :meth:`StreamRuntime.run` call produced.

    :meth:`render` is deliberately a pure function of the run's
    *results* — window extents, engines, pairs, totals — and never of
    how the run got there (recovery, restarts, torn tails all surface
    via ``log_event`` only), so a recovered run's output is
    byte-identical to an uninterrupted one.
    """

    windows: List[WindowResult] = field(default_factory=list)
    consumed: int = 0
    status: str = "complete"

    def render(self, limit: int = 5) -> str:
        """Deterministic human-readable summary."""
        lines: List[str] = []
        for window in self.windows:
            lines.append(
                f"window {window.index}: events [{window.start}, "
                f"{window.end}) engine={window.engine} "
                f"pairs={len(window.pairs)}"
            )
            for p in window.pairs[:limit]:
                lines.append(
                    f"  {p.u!s} {p.v!s} d1={p.d1:g} d2={p.d2:g} "
                    f"delta={p.delta:g}"
                )
            if len(window.pairs) > limit:
                lines.append(f"  ... {len(window.pairs) - limit} more")
        lines.append(
            f"advanced {self.consumed} events over {len(self.windows)} "
            f"window(s); status={self.status}"
        )
        return "\n".join(lines)


def _event_rows(temporal: TemporalGraph) -> List[EventRow]:
    """A temporal graph's stream as JSON-stable rows."""
    return [
        [ev.time, ev.u, ev.v, ev.weight] for ev in temporal.events()
    ]


def _materialise(rows: Sequence[EventRow]) -> Graph:
    """The graph aggregating ``rows`` (same semantics as TemporalGraph)."""
    temporal = TemporalGraph()
    for row in rows:
        temporal.add_edge(row[0], row[1], row[2], row[3])
    return temporal.snapshot()


class StreamRuntime:
    """Crash-safe advancement of snapshot state over an edge stream.

    Parameters
    ----------
    source:
        The sanitized stream to tail — a :class:`TemporalGraph` (its
        events in time order are the arrival order).
    directory:
        The durable root (``--wal-dir``): holds ``wal.log`` plus a
        ``checkpoints/`` store.  Opening a non-empty directory *is*
        recovery.
    config:
        The result-defining knobs (see :class:`RuntimeConfig`).
    max_restarts / workers / fsync:
        Execution-only knobs: supervisor budget, parallel workers for
        budgeted windows, WAL durability.
    guard:
        Optional :class:`~repro.runtime.guards.ResourceGuard`; a breach
        checkpoints and sheds (``status="shed:<kind>"``).
    breaker:
        Optional pre-built breaker (defaults to one seeded from
        ``config.seed``); its state is checkpointed and restored.
    chaos:
        Injection-point hook threaded into the WAL and the checkpoint
        sequence (``wal.append.mid``, ``checkpoint.mid``,
        ``repair.mid``); the chaos suite SIGKILLs there.
    repair_injector / window_injector:
        Deterministic fault hooks: the first fails incremental repair
        attempts (exercising the breaker), the second fails whole
        window computations (exercising the supervisor).
    on_advance:
        Optional :data:`AdvanceCallback` invoked after every window
        close with ``(state_version, window)`` — including windows
        re-closed during WAL-suffix replay, so a subscriber attached
        before recovery observes the same sequence an uninterrupted
        run produces.

    The :attr:`state_version` counter increments by exactly one per
    closed window, is persisted in every checkpoint, and is restored by
    recovery — so the version at any point of a recovered run equals
    the version an uninterrupted run carries at the same stream
    position (pinned by the chaos suite).
    """

    def __init__(
        self,
        source: TemporalGraph,
        directory: PathLike,
        config: RuntimeConfig,
        *,
        max_restarts: int = 3,
        workers: int = 1,
        fsync: bool = True,
        guard: Optional[ResourceGuard] = None,
        breaker: Optional[CircuitBreaker] = None,
        supervisor_backoff: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosHook] = None,
        repair_injector: Optional[FaultInjector] = None,
        window_injector: Optional[FaultInjector] = None,
        on_advance: Optional[AdvanceCallback] = None,
    ) -> None:
        self.directory = Path(directory)
        self.config = config
        self.workers = workers
        self._chaos = chaos if chaos is not None else _no_chaos
        self._repair_injector = repair_injector
        self._window_injector = window_injector
        self.on_advance = on_advance
        self.guard = guard
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            seed=config.seed
        )
        self.supervisor = Supervisor(
            max_restarts=max_restarts, backoff=supervisor_backoff
        )
        self.wal = WriteAheadLog(
            self.directory, fsync=fsync, chaos=self._chaos
        )
        self.store = CheckpointStore(self.directory / "checkpoints")
        self._source_rows = _event_rows(source)
        self._rows: List[EventRow] = []
        self.consumed = 0
        self.windows: List[WindowResult] = []
        self.state_version = 0
        self._window_start = 0
        self._applied_seq = 0
        self._checkpoint_seq: Optional[int] = None
        self.recovered_from_seq: Optional[int] = None
        self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _state_key(self, seq: int) -> List[Any]:
        return ["runtime", "state", seq]

    def _recover(self) -> None:
        best: Optional[int] = None
        for key in self.store.keys():
            if (
                isinstance(key, list)
                and len(key) == 3
                and key[:2] == ["runtime", "state"]
            ):
                seq = int(key[2])
                if seq < self.wal.compacted_upto:
                    continue  # its WAL suffix is gone; an older artefact
                if best is None or seq > best:
                    best = seq
        if best is None:
            if self.wal.compacted_upto != 0:
                raise RuntimeRecoveryError(
                    f"{self.directory}: the WAL was compacted up to "
                    f"sequence {self.wal.compacted_upto} but no usable "
                    "checkpoint at or past it exists — state cannot be "
                    "reconstructed"
                )
        else:
            payload = self.store.get(self._state_key(best))
            if (
                not isinstance(payload, dict)
                or payload.get("schema") != RUNTIME_SCHEMA_VERSION
            ):
                raise RuntimeRecoveryError(
                    f"{self.directory}: checkpoint at sequence {best} is "
                    "unreadable or schema-mismatched"
                )
            self._rows = [list(row) for row in payload["events"]]
            self.consumed = int(payload["consumed"])
            self.windows = [
                WindowResult.from_payload(row)
                for row in payload["windows"]
            ]
            self._window_start = (
                self.windows[-1].end if self.windows else 0
            )
            # Checkpoints written before the version counter existed
            # lack the field; the counter always equals the number of
            # closed windows, so the fallback is exact, not a guess.
            self.state_version = int(
                payload.get("version", len(self.windows))
            )
            self.breaker.restore(payload["breaker"])
            self._applied_seq = best
            self._checkpoint_seq = best
            self.recovered_from_seq = best
            log_event(
                "runtime.recovered", seq=best, consumed=self.consumed,
                windows=len(self.windows),
            )
        # Replay the WAL suffix through the normal apply path: batches
        # the dead process acknowledged but had not checkpointed.
        replayed = self.wal.replay(after_seq=self._applied_seq)
        for record in replayed:
            self._verify_replayed(record.events)
            self._apply_batch(record.events, record.seq)
        if replayed:
            log_event(
                "runtime.replayed", batches=len(replayed),
                upto=self._applied_seq,
            )

    def _verify_replayed(self, batch: List[EventRow]) -> None:
        """A WAL batch must match the source at the current position.

        The WAL stores *accepted* events; if the source file changed
        under the runtime, replaying would silently fork history.
        """
        expected = self._source_rows[
            self.consumed:self.consumed + len(batch)
        ]
        if [list(row) for row in batch] != [list(r) for r in expected]:
            raise RuntimeRecoveryError(
                f"{self.directory}: WAL batch at event offset "
                f"{self.consumed} does not match the source stream — "
                "the input changed since the log was written"
            )

    # ------------------------------------------------------------------
    # The service loop
    # ------------------------------------------------------------------
    def run(self, max_batches: Optional[int] = None) -> RuntimeReport:
        """Advance until the stream is drained (or shed/paused).

        Returns a :class:`RuntimeReport` whose rendering is
        byte-identical across kill/recover cycles.  ``max_batches``
        bounds how many *new* batches this call ingests
        (``status="paused"`` when the bound stops the run early).
        """
        total = len(self._source_rows)
        status = "complete"
        batches_done = 0
        while self.consumed < total:
            if max_batches is not None and batches_done >= max_batches:
                status = "paused"
                break
            if self.guard is not None:
                breached = self.guard.check()
                if breached is not None:
                    self._checkpoint()
                    status = f"shed:{breached}"
                    break
            batch = self._source_rows[
                self.consumed:self.consumed + self.config.batch_size
            ]
            seq = self.wal.append([list(row) for row in batch])
            self._apply_batch(batch, seq)
            batches_done += 1
        else:
            # Drained: close the final (possibly partial) window and
            # leave a checkpoint at the head so a re-run is a no-op.
            if self._window_start < self.consumed:
                self._close_window(end=self.consumed)
                self._checkpoint()
            elif self._checkpoint_seq != self._applied_seq:
                self._checkpoint()
        report = RuntimeReport(
            windows=list(self.windows),
            consumed=self.consumed,
            status=status,
        )
        log_event(
            "runtime.run_finished", status=status,
            consumed=self.consumed, windows=len(self.windows),
        )
        return report

    def _apply_batch(self, batch: Sequence[EventRow], seq: int) -> None:
        self._rows.extend(list(row) for row in batch)
        self.consumed += len(batch)
        self._applied_seq = seq
        while self.consumed - self._window_start >= self.config.window_events:
            end = self._window_start + self.config.window_events
            self._close_window(end=end)
            self._checkpoint()

    # ------------------------------------------------------------------
    # Query-service surface
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist the current state if anything changed since the last
        checkpoint.

        Used by the query service's drain and shed paths: the WAL is
        already ahead of every applied batch, so this only exists to
        bound the next recovery's replay, never for correctness.
        """
        if self._checkpoint_seq != self._applied_seq:
            self._checkpoint()

    def latest_window(self) -> Optional[WindowResult]:
        """The newest closed window, or ``None`` before the first close."""
        return self.windows[-1] if self.windows else None

    def window_snapshots(self, index: int) -> Tuple[Graph, Graph]:
        """The ``(G_t1, G_t2)`` snapshot pair of closed window ``index``.

        Materialised from the applied event prefix, so the pair is a
        pure function of checkpointed state — two runtimes at the same
        state version return identical snapshots.
        """
        if not 0 <= index < len(self.windows):
            raise IndexError(
                f"window {index} does not exist "
                f"({len(self.windows)} closed)"
            )
        window = self.windows[index]
        return (
            _materialise(self._rows[:window.start]),
            _materialise(self._rows[:window.end]),
        )

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def _close_window(self, end: int) -> None:
        index = len(self.windows)
        start = self._window_start
        g1 = _materialise(self._rows[:start])
        g2 = _materialise(self._rows[:end])
        # The breaker is consulted exactly once per window, outside the
        # supervised attempt, so restarts cannot skew its schedule.
        try_direct = self.breaker.allow()
        pairs, engine, direct_ok = self.supervisor.run(
            lambda: self._compute_window(index, g1, g2, try_direct),
            unit=f"window:{index}",
        )
        if try_direct:
            if direct_ok:
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
        window = WindowResult(
            index=index, start=start, end=end,
            engine=engine, pairs=tuple(pairs),
        )
        self.windows.append(window)
        self._window_start = end
        self.state_version += 1
        log_event(
            "runtime.window_closed", window=index, start=start, end=end,
            engine=engine, pairs=len(pairs), version=self.state_version,
        )
        if self.on_advance is not None:
            self.on_advance(self.state_version, window)

    def _compute_window(
        self, index: int, g1: Graph, g2: Graph, try_direct: bool
    ) -> Tuple[List[ConvergingPair], str, bool]:
        if self._window_injector is not None:
            self._window_injector.check(unit=f"window:{index}")
        if try_direct:
            try:
                if self._repair_injector is not None:
                    self._repair_injector.check(unit=f"repair:{index}")
                self._chaos("repair.mid")
                return self._direct_pairs(index, g1, g2)
            except (GraphValidationError, ValueError, InjectedFault) as exc:
                # Real failures (a window violating the subgraph
                # precondition — deletions in the stream — or a repair
                # the engine rejects) and injected ones feed the
                # breaker the same way.
                log_event(
                    "runtime.repair_failed", window=index,
                    error=type(exc).__name__,
                )
        return self._fallback_pairs(index, g1, g2)

    def _direct_pairs(
        self, index: int, g1: Graph, g2: Graph
    ) -> Tuple[List[ConvergingPair], str, bool]:
        if self.config.selector is None:
            pairs = top_k_converging_pairs(
                g1, g2, self.config.k, validate=True, engine="incremental"
            )
            return pairs, "incremental", True
        if g1.num_nodes < 2:
            # No pair can have a finite G_t1 distance, and selectors
            # cannot nominate candidates from an (almost) empty graph —
            # the first window of a fresh stream is legitimately empty.
            return [], "budgeted", True
        result = find_top_k_converging_pairs(
            g1, g2, k=self.config.k, m=self.config.m,
            selector=get_selector(self.config.selector),
            seed=self.config.seed + index, validate=True,
            workers=self.workers,
        )
        return result.pairs, "budgeted", True

    def _fallback_pairs(
        self, index: int, g1: Graph, g2: Graph
    ) -> Tuple[List[ConvergingPair], str, bool]:
        """Full-BFS degraded path: repair the pair, never trust the
        incremental engine.

        ``repair_snapshot_pair`` projects ``g2`` onto the nearest valid
        superset of ``g1`` (a no-op copy when the pair is already
        valid), so the fallback always computes on a well-formed pair —
        deterministically, whatever the stream did.
        """
        g2_safe, repair = repair_snapshot_pair(g1, g2)
        if not repair.clean:
            log_event(
                "runtime.window_repaired", window=index,
                detail=repair.summary(),
            )
        if self.config.selector is None:
            pairs = top_k_converging_pairs(
                g1, g2_safe, self.config.k, validate=False, engine="csr"
            )
            return pairs, "csr-fallback", False
        result = find_top_k_converging_pairs(
            g1, g2_safe, k=self.config.k, m=self.config.m,
            selector=get_selector(self.config.selector),
            seed=self.config.seed + index, validate=False,
            workers=self.workers,
        )
        return result.pairs, "budgeted-fallback", False

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        """Persist state at the currently-applied WAL sequence.

        Write order is crash-safe at every point: the new state record
        lands first, the previous one is deleted after, and the WAL is
        compacted last — a crash anywhere in between leaves at least
        one checkpoint whose WAL suffix is intact.
        """
        seq = self._applied_seq
        payload = {
            "schema": RUNTIME_SCHEMA_VERSION,
            "seq": seq,
            "consumed": self.consumed,
            "version": self.state_version,
            "events": [list(row) for row in self._rows],
            "windows": [w.to_payload() for w in self.windows],
            "breaker": self.breaker.to_payload(),
        }
        previous = self._checkpoint_seq
        self.store.put(self._state_key(seq), payload)
        self._chaos("checkpoint.mid")
        if previous is not None and previous != seq:
            self.store.delete(self._state_key(previous))
        self.wal.compact(seq)
        self._checkpoint_seq = seq
        log_event("runtime.checkpoint", seq=seq, consumed=self.consumed)


def _no_chaos(point: str) -> None:
    """The production chaos hook: nothing ever fires."""
