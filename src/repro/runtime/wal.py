"""Checksummed, torn-write-tolerant write-ahead log for edge batches.

The streaming runtime's durability contract is *write-ahead*: an edge
batch is appended (and fsynced) here **before** it is applied to any
in-memory snapshot state, so recovery after a crash is always
``last checkpoint + replay of the WAL suffix`` — never a guess about
which batches the dead process had absorbed.

On-disk format — one UTF-8 text line per record::

    W1 <seq> <sha256-16> <canonical-json-payload>\\n

* ``W1`` is the frame tag (format version 1);
* ``seq`` is a strictly consecutive 1-based record number (the header
  pseudo-record carries the sequence number compaction last advanced
  past, so continuity is checkable after any number of compactions);
* the checksum is the first 16 hex chars of the payload's SHA-256;
* the payload is compact sorted-key JSON, so a record's bytes are a
  pure function of its content.

Failure tolerance is asymmetric by design:

* a **torn tail** — a final line that is incomplete or fails its
  checksum, exactly what a crash mid-append leaves behind — is
  tolerated: the tail is truncated away on open (logged as
  ``wal.torn_tail``) and the log continues from the last durable
  record;
* **interior corruption** — an invalid line *followed by* valid
  records, which no crash can produce — raises :class:`WALError`,
  because silently dropping acknowledged records would break the
  recovery contract.

Appends route their raw ``write``/``fsync`` through an optional
:class:`~repro.resilience.faults.DiskFaultInjector`, so the chaos suite
exercises ENOSPC, torn writes, and fsync failures on the real code
path.  An optional ``chaos`` hook fires between the two halves of every
append (``wal.append.mid``) — the kill-9 acceptance tests SIGKILL the
process there to manufacture genuine torn tails.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.resilience.checkpoint import fsync_directory
from repro.resilience.events import log_event
from repro.resilience.faults import DiskFaultInjector

PathLike = Union[str, Path]

WAL_SCHEMA_VERSION = 1

LOG_NAME = "wal.log"

_FRAME_TAG = "W1"

#: Signature of the chaos hook: called with a dotted injection-point
#: label; a no-op in production, a SIGKILL in the acceptance suite.
ChaosHook = Callable[[str], None]


class WALError(RuntimeError):
    """The log is corrupt in a way recovery must not paper over."""


def _payload_line(seq: int, payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
    return f"{_FRAME_TAG} {seq} {digest} {blob}\n"


def _parse_line(line: str) -> Optional[Tuple[int, Dict[str, Any]]]:
    """``(seq, payload)`` for a valid frame, ``None`` for anything else."""
    if not line.endswith("\n"):
        return None
    parts = line[:-1].split(" ", 3)
    if len(parts) != 4 or parts[0] != _FRAME_TAG:
        return None
    tag, seq_text, digest, blob = parts
    if not seq_text.isdigit():
        return None
    if hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16] != digest:
        return None
    try:
        payload = json.loads(blob)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    return int(seq_text), payload


@dataclass(frozen=True)
class WALRecord:
    """One durable edge batch: its sequence number and event rows."""

    seq: int
    events: List[List[Any]]


class WriteAheadLog:
    """An append-only, checksummed log of accepted edge batches.

    Parameters
    ----------
    directory:
        Created (with parents) if absent; holds one ``wal.log`` file.
    fsync:
        Whether appends fsync before acknowledging (disable only in
        tests that measure something else).
    disk:
        Optional :class:`~repro.resilience.faults.DiskFaultInjector`
        through which every raw write/fsync is routed.
    chaos:
        Optional injection-point hook (see module docstring).

    Opening the log *is* recovery: the file is scanned, a torn tail is
    truncated (``wal.torn_tail`` event), interior corruption raises
    :class:`WALError`, and appends continue from the last durable
    sequence number.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        fsync: bool = True,
        disk: Optional[DiskFaultInjector] = None,
        chaos: Optional[ChaosHook] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_enabled = fsync
        self._disk = disk
        self._chaos = chaos if chaos is not None else _no_chaos
        self._records: List[WALRecord] = []
        self.compacted_upto = 0
        self.torn_tail_recovered = False
        self._recover()

    @property
    def path(self) -> Path:
        """Path of the single log segment."""
        return self.directory / LOG_NAME

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 = empty)."""
        if self._records:
            return self._records[-1].seq
        return self.compacted_upto

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        if not self.path.exists():
            self._write_fresh(compacted_upto=0, records=[])
            return
        raw = self.path.read_bytes()
        if not raw:
            # Created but never got its header (crash before first
            # append): indistinguishable from fresh.
            self._write_fresh(compacted_upto=0, records=[])
            return
        records, valid_bytes = self._scan(raw)
        if valid_bytes < len(raw):
            # Crash mid-append: drop the torn tail and move on.
            log_event(
                "wal.torn_tail",
                path=self.path.name,
                dropped_bytes=len(raw) - valid_bytes,
            )
            self.torn_tail_recovered = True
            with self.path.open("r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            fsync_directory(self.directory)
        self._records = records

    def _scan(self, raw: bytes) -> Tuple[List[WALRecord], int]:
        """Parse ``raw``; returns the valid records and their byte extent.

        Raises :class:`WALError` if a valid record follows an invalid
        line (interior corruption) or the sequence numbers are not
        strictly consecutive.
        """
        text = raw.decode("utf-8", errors="replace")
        lines = text.splitlines(keepends=True)
        records: List[WALRecord] = []
        valid_bytes = 0
        saw_header = False
        expected_seq = 0
        for lineno, line in enumerate(lines, start=1):
            parsed = _parse_line(line)
            if parsed is None:
                # Only a *tail* may be invalid; anything after it must
                # be garbage from the same torn write, not more frames.
                rest = lines[lineno:]
                if any(_parse_line(later) is not None for later in rest):
                    raise WALError(
                        f"{self.path}: corrupt record at line {lineno} "
                        "followed by valid records — the log was "
                        "modified, not torn; refusing to recover"
                    )
                return records, valid_bytes
            seq, payload = parsed
            if not saw_header:
                if payload.get("kind") != "header" or seq != 0:
                    raise WALError(
                        f"{self.path}: first record is not a WAL header"
                    )
                if payload.get("schema") != WAL_SCHEMA_VERSION:
                    raise WALError(
                        f"{self.path}: unsupported WAL schema "
                        f"{payload.get('schema')!r}"
                    )
                self.compacted_upto = int(payload.get("compacted_upto", 0))
                expected_seq = self.compacted_upto
                saw_header = True
            else:
                if seq != expected_seq + 1:
                    raise WALError(
                        f"{self.path}: sequence gap at line {lineno} "
                        f"(expected {expected_seq + 1}, found {seq})"
                    )
                events = payload.get("events")
                if payload.get("kind") != "batch" or not isinstance(
                    events, list
                ):
                    raise WALError(
                        f"{self.path}: record {seq} is not an edge batch"
                    )
                records.append(WALRecord(seq=seq, events=events))
                expected_seq = seq
            valid_bytes += len(line.encode("utf-8"))
        return records, valid_bytes

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _write_fresh(
        self, compacted_upto: int, records: List[WALRecord]
    ) -> None:
        """Atomically (re)write the whole segment — init and compaction."""
        header = {
            "kind": "header",
            "schema": WAL_SCHEMA_VERSION,
            "compacted_upto": compacted_upto,
        }
        lines = [_payload_line(0, header)]
        lines.extend(
            _payload_line(rec.seq, {"kind": "batch", "events": rec.events})
            for rec in records
        )
        blob = "".join(lines).encode("utf-8")
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            if self._disk is not None:
                self._disk.write(fh, blob, unit="wal.rewrite")
            else:
                fh.write(blob)
            fh.flush()
            if self.fsync_enabled:
                self._fsync(fh, unit="wal.rewrite")
        os.replace(tmp, self.path)
        fsync_directory(self.directory)
        self.compacted_upto = compacted_upto
        self._records = list(records)

    def _fsync(self, fh: Any, unit: str) -> None:
        if self._disk is not None:
            self._disk.fsync(fh, unit=unit)
        else:
            os.fsync(fh.fileno())

    def append(self, events: List[List[Any]]) -> int:
        """Durably append one edge batch; returns its sequence number.

        The record only counts as accepted when this method returns:
        any exception (injected or real ENOSPC / torn write / fsync
        failure) leaves the in-memory sequence untouched, and whatever
        partial bytes reached the disk are exactly the torn tail the
        next open truncates away.
        """
        seq = self.last_seq + 1
        line = _payload_line(seq, {"kind": "batch", "events": events})
        blob = line.encode("utf-8")
        with self.path.open("ab") as fh:
            if self._disk is not None:
                self._disk.write(fh, blob, unit="wal.append")
            else:
                # Two physical writes with a flush between them give the
                # chaos hook a real mid-append window: a SIGKILL between
                # the halves leaves a genuinely torn record.
                cut = len(blob) // 2
                fh.write(blob[:cut])
                fh.flush()
                self._chaos("wal.append.mid")
                fh.write(blob[cut:])
            fh.flush()
            if self.fsync_enabled:
                self._fsync(fh, unit="wal.append")
        self._records.append(WALRecord(seq=seq, events=list(events)))
        return seq

    # ------------------------------------------------------------------
    # Reads and compaction
    # ------------------------------------------------------------------
    def replay(self, after_seq: int = 0) -> List[WALRecord]:
        """The durable records with ``seq > after_seq``, in order.

        ``after_seq`` below :attr:`compacted_upto` raises
        :class:`WALError`: those records were compacted away, so the
        caller's checkpoint predates the log and recovery would be
        incomplete.
        """
        if after_seq < self.compacted_upto:
            raise WALError(
                f"records {after_seq + 1}..{self.compacted_upto} were "
                "compacted away; recovery needs a checkpoint at or past "
                f"sequence {self.compacted_upto}"
            )
        return [rec for rec in self._records if rec.seq > after_seq]

    def compact(self, upto_seq: int) -> int:
        """Drop records with ``seq <= upto_seq``; returns how many.

        Callers must only compact past a durable checkpoint — the
        runtime checkpoints first, then compacts, so a crash between
        the two leaves extra (harmlessly re-skippable) records, never
        missing ones.  The rewrite is atomic (temp file + fsync +
        rename + directory fsync).
        """
        if upto_seq > self.last_seq:
            raise WALError(
                f"cannot compact past the log head "
                f"({upto_seq} > {self.last_seq})"
            )
        if upto_seq <= self.compacted_upto:
            return 0
        keep = [rec for rec in self._records if rec.seq > upto_seq]
        removed = len(self._records) - len(keep)
        self._write_fresh(compacted_upto=upto_seq, records=keep)
        log_event(
            "wal.compacted",
            path=self.path.name,
            upto=upto_seq,
            removed=removed,
            kept=len(keep),
        )
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({str(self.directory)!r}, "
            f"last_seq={self.last_seq})"
        )


def _no_chaos(point: str) -> None:
    """The production chaos hook: nothing ever fires."""
