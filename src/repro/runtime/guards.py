"""Soft resource budgets: checkpoint-and-shed instead of OOM death.

A streaming run that grows its snapshot past the machine's memory dies
to the OOM killer with whatever the WAL holds as its only legacy; one
that overruns an operator's time box gets SIGKILLed by the scheduler
with the same result.  :class:`ResourceGuard` turns both cliffs into a
*soft* signal the runtime polls at batch boundaries: when a budget is
breached, the runtime writes a final checkpoint and sheds (exits
cleanly, resumable), rather than being killed mid-write.

Budgets are **soft** by construction — they are checked cooperatively,
so the real peak can overshoot by up to one batch's worth of growth.
That is the point: the guard fires while there is still headroom to
persist state.

Memory is measured as the process's peak RSS via
:func:`resource.getrusage` (``ru_maxrss`` — kilobytes on Linux, bytes
on macOS; the platform factor is handled here).  Time is measured on an
injectable monotonic clock defaulting to the project's single allowed
wall-clock chokepoint, :func:`repro.resilience.clock.monotonic`.  Tests
inject both probes, so guard behaviour is pinned without real pressure.
"""

from __future__ import annotations

import resource
import sys
from typing import Callable, Optional

from repro.resilience.clock import monotonic
from repro.resilience.events import log_event

Clock = Callable[[], float]
MemoryProbe = Callable[[], float]


def peak_rss_mb() -> float:
    """The process's peak resident set size, in mebibytes."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


class ResourceGuard:
    """Polls soft memory/time budgets at cooperative check points.

    Parameters
    ----------
    soft_memory_mb:
        Peak-RSS budget in MiB; ``None`` disables the memory guard.
    soft_time_s:
        Elapsed-seconds budget, measured from construction; ``None``
        disables the time guard.
    clock / memory_probe:
        Injectable probes (tests pass fakes; production uses the
        monotonic chokepoint and :func:`peak_rss_mb`).

    :meth:`check` returns the *kind* of the first breached budget
    (``"memory"`` or ``"time"``) or ``None``; the caller decides what
    shedding means.  Each kind is reported via ``log_event`` only once —
    a guard that has fired stays fired, and the runtime is expected to
    shed promptly rather than poll a breached guard forever.
    """

    def __init__(
        self,
        *,
        soft_memory_mb: Optional[float] = None,
        soft_time_s: Optional[float] = None,
        clock: Clock = monotonic,
        memory_probe: MemoryProbe = peak_rss_mb,
    ) -> None:
        if soft_memory_mb is not None and soft_memory_mb <= 0:
            raise ValueError(
                f"soft_memory_mb must be positive, got {soft_memory_mb}"
            )
        if soft_time_s is not None and soft_time_s <= 0:
            raise ValueError(
                f"soft_time_s must be positive, got {soft_time_s}"
            )
        self.soft_memory_mb = soft_memory_mb
        self.soft_time_s = soft_time_s
        self._clock = clock
        self._memory_probe = memory_probe
        self._start = clock()
        self.breached: Optional[str] = None

    @property
    def enabled(self) -> bool:
        """Whether any budget is configured."""
        return self.soft_memory_mb is not None or self.soft_time_s is not None

    def check(self) -> Optional[str]:
        """The kind of the first breached budget, or ``None``.

        Once breached, subsequent checks keep returning the same kind
        without re-probing or re-logging.
        """
        if self.breached is not None:
            return self.breached
        if self.soft_memory_mb is not None:
            if self._memory_probe() > self.soft_memory_mb:
                self.breached = "memory"
                # The budget (a config value) is loggable; the raw probe
                # reading is not replayed into any output path.
                log_event(
                    "guard.breached",
                    budget="memory",
                    soft_memory_mb=self.soft_memory_mb,
                )
                return self.breached
        if self.soft_time_s is not None:
            if self._clock() - self._start > self.soft_time_s:
                self.breached = "time"
                log_event(
                    "guard.breached",
                    budget="time",
                    soft_time_s=self.soft_time_s,
                )
                return self.breached
        return None
