"""Supervised execution: heartbeats, bounded restarts, escalation.

A long streaming run is a loop of windows, each of which may hang (a
wedged worker pool) or crash (a poisoned batch, a transient OS error).
The :class:`Supervisor` wraps one unit of work with a *lifetime* restart
budget: failures are retried with seeded backoff until the budget is
spent, then :class:`SupervisorGivingUp` escalates to the caller — the
runtime checkpoints and exits cleanly rather than flapping forever.

Liveness is tracked with :class:`Heartbeat` / :class:`HeartbeatMonitor`:
workers ``beat()`` as they make progress, and the monitor answers
"has this worker been silent longer than its timeout?" on an injectable
monotonic clock (defaulting to the project's single allowed wall-clock
chokepoint, :func:`repro.resilience.clock.monotonic`), so tests drive
staleness with a fake clock instead of sleeping.

Interrupts (:class:`KeyboardInterrupt`, :class:`SystemExit`) and
deadline expiries (:class:`~repro.resilience.policy.BudgetRunTimeout`)
are never treated as restartable failures — the first two are the
operator speaking, the last is the budget speaking.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TypeVar

from repro.resilience.clock import monotonic
from repro.resilience.degrade import describe_error
from repro.resilience.events import log_event
from repro.resilience.policy import BudgetRunTimeout, RetryPolicy

T = TypeVar("T")

Clock = Callable[[], float]


class SupervisorGivingUp(RuntimeError):
    """The restart budget is spent; the caller must checkpoint and stop.

    Attributes
    ----------
    unit:
        Label of the unit whose final attempt failed.
    restarts:
        How many restarts were consumed over the supervisor's lifetime.
    last_error:
        The final underlying exception (also chained as ``__cause__``).
    """

    def __init__(
        self, unit: str, restarts: int, last_error: BaseException
    ) -> None:
        super().__init__(
            f"supervisor giving up on unit {unit!r} after {restarts} "
            f"restart(s): {describe_error(last_error)}"
        )
        self.unit = unit
        self.restarts = restarts
        self.last_error = last_error


class Heartbeat:
    """A worker-side liveness signal: ``beat()`` whenever progress happens."""

    def __init__(self, name: str, clock: Clock = monotonic) -> None:
        self.name = name
        self._clock = clock
        self.beats = 0
        self.last_beat = clock()

    def beat(self) -> None:
        """Record one unit of progress."""
        self.beats += 1
        self.last_beat = self._clock()

    def age(self) -> float:
        """Seconds since the last beat."""
        return self._clock() - self.last_beat


class HeartbeatMonitor:
    """The supervisor-side view over a set of heartbeats.

    Parameters
    ----------
    timeout:
        Seconds of silence after which a heartbeat counts as stale.
    clock:
        Shared monotonic clock (tests inject a fake).
    """

    def __init__(self, timeout: float, clock: Clock = monotonic) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._clock = clock
        self._beats: Dict[str, Heartbeat] = {}

    def register(self, name: str) -> Heartbeat:
        """Create (or return) the heartbeat tracked under ``name``."""
        if name not in self._beats:
            self._beats[name] = Heartbeat(name, clock=self._clock)
        return self._beats[name]

    def stale(self) -> Dict[str, float]:
        """``{name: silence_seconds}`` for every stale heartbeat."""
        out: Dict[str, float] = {}
        for name, beat in sorted(self._beats.items()):
            age = beat.age()
            if age > self.timeout:
                out[name] = age
        if out:
            log_event(
                "heartbeat.stale",
                workers=sorted(out),
                timeout=self.timeout,
            )
        return out

    def healthy(self) -> bool:
        """Whether every registered heartbeat is fresh."""
        return not self.stale()


class Supervisor:
    """Run units of work under a lifetime restart budget.

    Parameters
    ----------
    max_restarts:
        Total restarts available across *all* :meth:`run` calls on this
        instance — a long run that keeps failing in different windows
        still converges on escalation instead of flapping.
    backoff:
        Delay policy between restarts; only its deterministic
        :meth:`~repro.resilience.policy.RetryPolicy.delays` schedule is
        used (its own retry count is ignored in favour of
        ``max_restarts``).
    sleep:
        Injectable sleep for the backoff delays; defaults to not
        sleeping at all (the runtime's cadence is request-driven and
        recovery must not depend on wall-clock pauses).
    """

    def __init__(
        self,
        *,
        max_restarts: int = 3,
        backoff: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.max_restarts = max_restarts
        self.backoff = backoff if backoff is not None else RetryPolicy(
            max_retries=0, base_delay=0.0
        )
        self._sleep = sleep
        self.restarts_used = 0
        self._delays = self.backoff.delays_unbounded()

    def run(self, fn: Callable[[], T], *, unit: str = "unit") -> T:
        """Run ``fn``, restarting on failure while budget remains.

        Raises :class:`SupervisorGivingUp` (chaining the last error)
        once the lifetime budget is exhausted.  Interrupts and
        :class:`~repro.resilience.policy.BudgetRunTimeout` propagate
        immediately — they are stop conditions, not crashes.
        """
        while True:
            try:
                return fn()
            except (KeyboardInterrupt, SystemExit, BudgetRunTimeout):
                raise
            except Exception as exc:
                if self.restarts_used >= self.max_restarts:
                    log_event(
                        "supervisor.giveup",
                        unit=unit,
                        restarts=self.restarts_used,
                        error=type(exc).__name__,
                    )
                    raise SupervisorGivingUp(
                        unit, self.restarts_used, exc
                    ) from exc
                self.restarts_used += 1
                delay = next(self._delays)
                log_event(
                    "supervisor.restart",
                    unit=unit,
                    restart=self.restarts_used,
                    of=self.max_restarts,
                    delay=round(delay, 6),
                    error=type(exc).__name__,
                )
                if self._sleep is not None and delay > 0:
                    self._sleep(delay)

    @property
    def restarts_remaining(self) -> int:
        """How much of the lifetime budget is left."""
        return self.max_restarts - self.restarts_used
