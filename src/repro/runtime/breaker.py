"""Clock-free circuit breaker gating the incremental repair engine.

The streaming runtime prefers delta-BFS repairs
(:mod:`repro.graph.incremental`) because they are cheap, but a stream
that keeps violating the subgraph precondition (deletions, re-keyed
nodes) makes every repair attempt a wasted validation pass before the
inevitable full-BFS fallback.  The breaker turns that per-window retry
into a state machine:

* **CLOSED** — repairs are attempted; ``failure_threshold`` consecutive
  failures trip the breaker OPEN.
* **OPEN** — repairs are skipped outright (full BFS is used) for a
  *probe wait* counted in denied requests, not seconds: wall-clock
  waits would make recovery runs diverge from uninterrupted ones, and
  the runtime's request cadence (one per window) is the natural clock.
* **HALF_OPEN** — one probe repair is allowed through.  Success closes
  the breaker; failure re-opens it with a longer wait (doubled per
  consecutive trip, clamped at ``max_probe_after``).

Probe waits carry seeded jitter from ``random.Random(seed)`` so
co-scheduled breakers don't probe in lockstep, while any given breaker's
schedule — and therefore every engine decision a recovered run replays —
is a pure function of ``(config, request history)``.  The full state
(including the RNG) round-trips through :meth:`to_payload` /
:meth:`from_payload`, which is how checkpoints make recovered runs
byte-identical to uninterrupted ones.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.resilience.events import log_event

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATES = (CLOSED, OPEN, HALF_OPEN)

BREAKER_SCHEMA_VERSION = 1


class CircuitBreaker:
    """Consecutive-failure breaker with a request-counted probe schedule.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls (while CLOSED) that
        trip the breaker.
    probe_after:
        Base number of denied requests an OPEN breaker waits before
        moving to HALF_OPEN; doubles on each consecutive re-trip.
    max_probe_after:
        Ceiling on the (pre-jitter) probe wait.
    jitter:
        Each wait is scaled by ``1 + Uniform(0, jitter)`` drawn from the
        breaker's own seeded RNG, then rounded to an integer count.
    seed:
        Seeds the jitter RNG; the whole schedule is deterministic.

    The caller drives the breaker with three methods: :meth:`allow`
    (once per request — answers "may I try the protected path?"),
    then exactly one of :meth:`record_success` / :meth:`record_failure`
    whenever ``allow`` returned ``True``.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        probe_after: int = 2,
        max_probe_after: int = 16,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_after < 1:
            raise ValueError(f"probe_after must be >= 1, got {probe_after}")
        if max_probe_after < probe_after:
            raise ValueError(
                "max_probe_after must be >= probe_after "
                f"({max_probe_after} < {probe_after})"
            )
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.max_probe_after = max_probe_after
        self.jitter = jitter
        self.seed = seed
        self._rng = random.Random(seed)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.consecutive_trips = 0
        self.denied_since_open = 0
        self.current_wait = 0
        #: ``(state, reason)`` history — tests pin the exact sequence.
        self.transitions: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    def _transition(self, state: str, reason: str) -> None:
        self.state = state
        self.transitions.append((state, reason))
        log_event("breaker.transition", state=state, reason=reason)

    def _draw_wait(self) -> int:
        # _open runs after the trip counter was incremented, so the
        # first trip (counter 1) waits the base probe_after.
        base = min(
            self.max_probe_after,
            self.probe_after * (2 ** (self.consecutive_trips - 1)),
        )
        scaled = base * (1.0 + self._rng.uniform(0.0, self.jitter))
        return max(1, int(scaled))

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the protected path may be tried for this request.

        While OPEN, each denial counts down the probe wait; when it is
        spent the breaker moves to HALF_OPEN and this request becomes
        the probe (allowed through).
        """
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            # One probe is already in flight per transition; a second
            # request before its outcome stays on the fallback path.
            return False
        if self.denied_since_open >= self.current_wait:
            self._transition(HALF_OPEN, "probe_due")
            return True
        self.denied_since_open += 1
        return False

    def record_success(self) -> None:
        """The protected path succeeded (call only after ``allow()``)."""
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.consecutive_trips = 0
            self._transition(CLOSED, "probe_succeeded")

    def record_failure(self) -> None:
        """The protected path failed (call only after ``allow()``)."""
        if self.state == HALF_OPEN:
            self.consecutive_trips += 1
            self._open("probe_failed")
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.consecutive_trips += 1
            self._open("threshold")

    def _open(self, reason: str) -> None:
        self.consecutive_failures = 0
        self.denied_since_open = 0
        self.current_wait = self._draw_wait()
        self._transition(OPEN, reason)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-stable snapshot of the full breaker state.

        Includes the jitter RNG's internal state so a restored breaker
        draws the *same* future probe waits an uninterrupted run would —
        required for byte-identical recovery.
        """
        rng_state = self._rng.getstate()
        return {
            "schema": BREAKER_SCHEMA_VERSION,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_trips": self.consecutive_trips,
            "denied_since_open": self.denied_since_open,
            "current_wait": self.current_wait,
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`to_payload` in place.

        Raises :class:`ValueError` on schema mismatch or an invalid
        state name — a corrupt checkpoint must not half-restore.
        """
        if payload.get("schema") != BREAKER_SCHEMA_VERSION:
            raise ValueError(
                f"breaker payload schema mismatch: {payload.get('schema')!r}"
            )
        state = payload["state"]
        if state not in _STATES:
            raise ValueError(f"unknown breaker state {state!r}")
        self.state = state
        self.consecutive_failures = int(payload["consecutive_failures"])
        self.consecutive_trips = int(payload["consecutive_trips"])
        self.denied_since_open = int(payload["denied_since_open"])
        self.current_wait = int(payload["current_wait"])
        version, internal, gauss = payload["rng"]
        self._rng.setstate((version, tuple(internal), gauss))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}, "
            f"trips={self.consecutive_trips})"
        )
