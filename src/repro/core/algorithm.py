"""The generic top-k algorithm (Algorithm 1 of the paper).

Given a candidate selector, the generic algorithm

1. asks the selector for up to ``m`` candidate endpoints (phase 1,
   charged to the SSSP budget as ``"generation"``),
2. computes single-source shortest paths from every candidate in both
   snapshots (phase 2, ``"topk"`` charges; rows the selector already
   computed are reused for free),
3. scores every ``(candidate, v)`` pair connected at t1 with
   ``Δ = d_t1 − d_t2`` and returns the k best.

The total spend is exactly ``2m`` SSSPs for every selector in the suite —
the budget tests assert this against Table 1's per-approach split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.budget import SPBudget
from repro.core.pairs import ConvergingPair, canonical_pair
from repro.graph.graph import Graph
from repro.graph.traversal import single_source_distances
from repro.graph.validation import check_snapshot_pair
from repro.parallel import ParallelExecutor, worker_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.selection.base import CandidateSelector, SelectionResult

Node = Hashable


@dataclass
class TopKResult:
    """Everything Algorithm 1 produced, plus its audit trail.

    Attributes
    ----------
    pairs:
        The k best converging pairs found among candidate-incident pairs,
        ranked by Δ descending (deterministic tie-breaks).
    candidates:
        The candidate endpoints the selector nominated.
    budget:
        The budget object after the run — inspect ``budget.by_phase()``
        to see the Table 1 split.
    """

    pairs: List[ConvergingPair]
    candidates: List[Node]
    budget: SPBudget

    def found_pair_set(self) -> set:
        """Canonical-pair set of the result (for coverage computations)."""
        return {p.pair for p in self.pairs}


def find_top_k_converging_pairs(
    g1: Graph,
    g2: Graph,
    k: int,
    m: int,
    selector: "CandidateSelector",
    seed: Optional[int] = None,
    validate: bool = True,
    budget_limit: Optional[int] = -1,
    workers: int = 1,
    prune: bool = False,
) -> TopKResult:
    """Algorithm 1: budgeted top-k converging pairs.

    Parameters
    ----------
    g1, g2:
        The snapshots (``g1`` must be a subgraph of ``g2``).
    k:
        How many pairs to return.
    m:
        The budget parameter: ``2m`` SSSP computations in total.
    selector:
        Any :class:`~repro.selection.base.CandidateSelector`.
    seed:
        Seed for the selector's randomised choices (landmark sampling).
    validate:
        Run the snapshot-pair structural checks first (disable for tight
        benchmark loops on trusted inputs).
    budget_limit:
        ``-1`` (default) enforces the paper's ``2m``; ``None`` disables
        enforcement; any other value is a custom limit.
    workers:
        Process-pool size for the phase-2 per-candidate SSSP batch
        (1 = serial).  Results and budget accounting are bit-identical
        at any worker count; candidate selection (phase 1) is untouched.
    prune:
        Apply Δ-aware pruning (:mod:`repro.graph.prune`) to the phase-2
        traversals: serial runs maintain the running k-th best Δ and
        skip or level-cut candidates whose bound rules them out; pooled
        workers apply the static Δ ≥ 1 bound (rows are precomputed, so
        no running k-th exists yet).  The returned pairs and the budget
        ledger are identical either way — a skipped or cut traversal
        still charges as one SSSP, exactly like an unpruned one, because
        the paper's budget counts SSSP *results obtained* (the pruned
        engine provably obtains the same result).  Unweighted snapshots
        only.

    Returns
    -------
    TopKResult
        Pairs found, candidates used, and the audited budget.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if prune and (g1.is_weighted() or g2.is_weighted()):
        raise ValueError(
            "prune=True requires unweighted snapshots; the weighted "
            "(dict) scoring path has no level arrays to bound"
        )
    if validate:
        check_snapshot_pair(g1, g2)

    limit = 2 * m if budget_limit == -1 else budget_limit
    budget = SPBudget(limit)
    rng = np.random.default_rng(seed)

    result = selector.select(g1, g2, m, budget, rng=rng)
    candidates = list(result.candidates)
    if len(candidates) > m:
        raise ValueError(
            f"selector {selector.name!r} returned {len(candidates)} "
            f"candidates for budget m={m}"
        )
    if len(set(candidates)) != len(candidates):
        raise ValueError(
            f"selector {selector.name!r} returned duplicate candidates"
        )
    for c in candidates:
        if c not in g1:
            raise ValueError(
                f"selector {selector.name!r} returned candidate {c!r} "
                "that is not a node of G_t1 (pairs must be connected at t1)"
            )

    # Phase 2: distance rows from every candidate in both snapshots,
    # then Δ for every candidate-incident connected pair.  Unweighted
    # snapshots run through the vectorised CSR engine; weighted ones
    # stream Dijkstra rows.  Results are identical either way.
    if g1.is_weighted() or g2.is_weighted():
        scored = _score_candidates_dict(
            g1, g2, candidates, result, budget, workers
        )
    else:
        from repro.parallel import derive_run_id

        scored = _score_candidates_csr(
            g1, g2, candidates, result, budget, workers,
            prune=prune, k=k,
            # Seeded, collision-safe shm segment identity — everything
            # that shapes the run, nothing from the clock or the pid.
            shm_run_id=derive_run_id(
                "topk.sssp", selector.name, seed, k, m, len(candidates)
            ),
        )

    ranked = sorted(scored.values(), key=ConvergingPair.sort_key)
    return TopKResult(pairs=ranked[:k], candidates=candidates, budget=budget)


def _dict_rows_task(
    spec: "Tuple[Node, bool, bool]",
) -> "Tuple[Optional[Dict[Node, float]], Optional[Dict[Node, float]]]":
    """Worker task: fresh distance maps for one candidate (weighted path)."""
    c, need1, need2 = spec
    state = worker_state()
    # reprolint: disable=R004 -- charged in the parent's scoring loop before dispatch (ledger stays in-parent)
    d1 = single_source_distances(state["g1"], c) if need1 else None
    # reprolint: disable=R004 -- charged in the parent's scoring loop before dispatch (ledger stays in-parent)
    d2 = single_source_distances(state["g2"], c) if need2 else None
    return d1, d2


def _score_candidates_dict(
    g1: Graph, g2: Graph, candidates: Sequence[Node],
    result: "SelectionResult", budget: SPBudget,
    workers: int = 1, prune: bool = False, k: int = 0,
    shm_run_id: Optional[str] = None,
) -> Dict[tuple, ConvergingPair]:
    """Reference scoring path: one distance map pair per candidate.

    ``prune``/``k``/``shm_run_id`` keep the signature interchangeable
    with ``_score_candidates_csr``; distance maps carry no level arrays
    to bound (callers reject ``prune=True`` on weighted inputs before
    reaching here), and dict graphs hold no shareable arrays, so the
    arena never publishes on this path.
    """
    fresh: Dict[Node, tuple] = {}
    if workers > 1:
        specs = [
            (c, result.d1_rows.get(c) is None, result.d2_rows.get(c) is None)
            for c in candidates
        ]
        if any(n1 or n2 for _, n1, n2 in specs):
            executor = ParallelExecutor(
                workers, state={"g1": g1, "g2": g2}, shm_run_id=shm_run_id
            )
            rows = executor.map(_dict_rows_task, specs, unit="topk.sssp")
            fresh = dict(zip(candidates, rows))

    scored: Dict[tuple, ConvergingPair] = {}
    for c in candidates:
        pre1, pre2 = fresh.get(c, (None, None))
        d1 = result.d1_rows.get(c)
        if d1 is None:
            budget.charge("topk", "g1", 1)
            d1 = pre1 if pre1 is not None else single_source_distances(g1, c)
        d2 = result.d2_rows.get(c)
        if d2 is None:
            budget.charge("topk", "g2", 1)
            d2 = pre2 if pre2 is not None else single_source_distances(g2, c)
        for v, dv1 in d1.items():
            if v == c:
                continue
            delta = dv1 - d2[v]
            if delta <= 0:
                continue
            key = canonical_pair(c, v)
            if key not in scored:
                scored[key] = ConvergingPair(key[0], key[1], dv1, d2[v])
    return scored


def _csr_rows_task(
    spec: "Tuple[int, int]",
) -> "Tuple[Optional[np.ndarray], Optional[np.ndarray]]":
    """Worker task: fresh level rows for one candidate (CSR path).

    ``spec`` is ``(i1, i2)`` — the candidate's index in each snapshot's
    CSR view, or ``-1`` for a row the selector already cached (free).
    The worker state carries one :class:`SnapshotDelta` shipped once per
    pool; when both rows are fresh the t2 row is an incremental repair
    of the t1 traversal rather than a second traversal (bit-identical
    either way).  A candidate whose t1 row is cached in the parent has
    no level array here to repair from, so its t2 row falls back to a
    full traversal — the worst-case path documented in docs/perf.md.
    """
    i1, i2 = spec
    from repro.graph.csr import bfs_levels
    from repro.graph.incremental import repair_levels
    from repro.graph.prune import source_bound

    state = worker_state()
    delta = state["delta"]
    plan = state.get("plan")
    lv1 = None
    lv2 = None
    if i1 >= 0:
        # reprolint: disable=R004 -- charged in the parent's scoring loop before dispatch (ledger stays in-parent)
        raw1 = bfs_levels(delta.csr1, i1)
        lv1 = raw1.astype(np.int64)
        if i2 >= 0:
            # Static Δ ≥ 1 prune: rows are precomputed before scoring,
            # so no running k-th Δ exists yet — only the always-sound
            # "no converging pair at all" bound applies.  The returned
            # row differs from the exact one only where Δ would be ≤ 0,
            # which scoring discards, so the result is unchanged.
            if plan is not None and source_bound(raw1, plan) < 1:
                lv2 = lv1
            elif plan is not None:
                # reprolint: disable=R004 -- the repaired t2 row is the second half of the candidate's SSSP pair, charged in-parent
                lv2 = repair_levels(
                    delta, raw1, max_level=int(raw1.max()) - 1
                )[delta.mapping].astype(np.int64)
            else:
                # reprolint: disable=R004 -- the repaired t2 row is the second half of the candidate's SSSP pair, charged in-parent
                lv2 = repair_levels(delta, raw1)[delta.mapping].astype(
                    np.int64
                )
    if i2 >= 0 and lv2 is None:
        # reprolint: disable=R004 -- charged in the parent's scoring loop before dispatch (ledger stays in-parent)
        lv2 = bfs_levels(delta.csr2, i2)[delta.mapping].astype(np.int64)
    return lv1, lv2


def _csr_rows_batch_task(
    batch: "Sequence[Tuple[int, int]]",
) -> "List[Tuple[Optional[np.ndarray], Optional[np.ndarray]]]":
    """Worker task: fresh level rows for a batch of candidates (CSR path).

    Per-spec semantics are exactly :func:`_csr_rows_task`'s — same
    static Δ ≥ 1 prune, same incremental repair, same cached-row
    fallbacks — but the independent traversals are advanced together by
    the bit-parallel multi-source kernel: one msbfs block for the
    batch's fresh t1 rows, one for its cached-t1 → full-t2 fallbacks.
    The repairs stay per-source (each consumes its own t1 row).  Budget
    note: batching never changes what is charged — each spec is still
    one SSSP result per fresh row, charged in-parent.
    """
    from repro.graph.incremental import repair_levels
    from repro.graph.msbfs import msbfs_levels
    from repro.graph.prune import source_bound

    state = worker_state()
    delta = state["delta"]
    plan = state.get("plan")
    t1_sources = [i1 for i1, _ in batch if i1 >= 0]
    t2_sources = [i2 for i1, i2 in batch if i1 < 0 and i2 >= 0]
    # reprolint: disable=R004 -- charged in the parent's scoring loop before dispatch (ledger stays in-parent)
    block1 = msbfs_levels(delta.csr1, t1_sources) if t1_sources else None
    # reprolint: disable=R004 -- charged in the parent's scoring loop before dispatch (ledger stays in-parent)
    block2 = msbfs_levels(delta.csr2, t2_sources) if t2_sources else None

    out: List[Tuple[Optional[np.ndarray], Optional[np.ndarray]]] = []
    pos1 = pos2 = 0
    for i1, i2 in batch:
        lv1: Optional[np.ndarray] = None
        lv2: Optional[np.ndarray] = None
        if i1 >= 0:
            assert block1 is not None
            raw1 = block1[pos1]
            pos1 += 1
            lv1 = raw1.astype(np.int64)
            if i2 >= 0:
                if plan is not None and source_bound(raw1, plan) < 1:
                    lv2 = lv1
                elif plan is not None:
                    # reprolint: disable=R004 -- the repaired t2 row is the second half of the candidate's SSSP pair, charged in-parent
                    lv2 = repair_levels(
                        delta, raw1, max_level=int(raw1.max()) - 1
                    )[delta.mapping].astype(np.int64)
                else:
                    # reprolint: disable=R004 -- the repaired t2 row is the second half of the candidate's SSSP pair, charged in-parent
                    lv2 = repair_levels(delta, raw1)[delta.mapping].astype(
                        np.int64
                    )
        if i2 >= 0 and lv2 is None:
            assert block2 is not None
            lv2 = block2[pos2][delta.mapping].astype(np.int64)
            pos2 += 1
        out.append((lv1, lv2))
    return out


def _score_candidates_csr(
    g1: Graph, g2: Graph, candidates: Sequence[Node],
    result: "SelectionResult", budget: SPBudget,
    workers: int = 1, prune: bool = False, k: int = 0,
    shm_run_id: Optional[str] = None,
) -> Dict[tuple, ConvergingPair]:
    """Vectorised scoring path for unweighted snapshots.

    Distance rows — cached dicts from the selector or freshly charged
    CSR BFS runs — are held as level arrays aligned to ``G_t1``'s node
    order, and each candidate's Δ vector is a single numpy subtraction.
    A candidate needing both rows pays one t1 traversal plus an
    incremental repair into the t2 row (:mod:`repro.graph.incremental`)
    through a :class:`SnapshotDelta` built once per run; a candidate
    whose t1 row came cached from the selector falls back to a full t2
    traversal.  The budget accounting is identical to the dict path
    either way: a cached row is free, a missing one is charged to
    ``topk`` on its snapshot — the repair is an implementation detail of
    *computing* the charged t2 row, never a way to skip its charge.
    With ``workers > 1`` the fresh rows are computed by a process pool
    first (the delta ships to each worker once, via the pool
    initializer); charging and scoring stay in the parent, in candidate
    order.

    ``prune=True`` (with ``k``, the number of pairs the caller will
    keep) turns on Δ-aware pruning from :mod:`repro.graph.prune`.
    Serially computed t2 rows are skipped or level-cut against the
    *running* k-th best Δ of the pairs scored so far; pooled rows are
    precomputed before any scoring, so workers receive the plan and
    apply only the static Δ ≥ 1 bound.  Either way the scored map may
    silently lack (or under-score) pairs that provably rank strictly
    below the final k-th Δ — the caller's ``ranked[:k]`` truncation is
    unaffected, which the differential harness pins byte-for-byte.
    Budget charges are untouched: a pruned traversal charges exactly
    like the unpruned one it replaces.
    """
    from repro.graph.csr import UNREACHED, bfs_levels
    from repro.graph.incremental import SnapshotDelta, repair_levels
    from repro.graph.prune import (
        KthTracker,
        PrunePlan,
        bounded_bfs_levels,
        source_bound,
    )

    delta = SnapshotDelta.from_graphs(g1, g2)
    csr1, csr2 = delta.csr1, delta.csr2
    n = csr1.num_nodes
    nodes = csr1.nodes
    align = delta.mapping
    plan = PrunePlan.from_delta(delta) if prune else None
    tracker = KthTracker(k) if prune else None

    fresh: Dict[Node, tuple] = {}
    if workers > 1:
        specs = [
            (
                csr1.index[c] if result.d1_rows.get(c) is None else -1,
                csr2.index[c] if result.d2_rows.get(c) is None else -1,
            )
            for c in candidates
        ]
        if any(i1 >= 0 or i2 >= 0 for i1, i2 in specs):
            # Batch width balances the bit-parallel sweep (wider = fewer
            # frontier loops) against pool utilisation (small candidate
            # sets must still spread across the workers).
            width = max(1, min(64, -(-len(specs) // (workers * 4))))
            batches = [
                specs[i : i + width] for i in range(0, len(specs), width)
            ]
            executor = ParallelExecutor(
                workers,
                state={"delta": delta, "plan": plan},
                shm_run_id=shm_run_id,
            )
            row_batches = executor.map(
                _csr_rows_batch_task, batches, unit="topk.sssp"
            )
            rows = [row for batch in row_batches for row in batch]
            fresh = dict(zip(candidates, rows))

    def row_to_levels(row: Dict[Node, float], index: Dict[Node, int]) -> np.ndarray:
        levels = np.full(n, UNREACHED, dtype=np.int64)
        for v, d in row.items():
            i = index.get(v)
            if i is not None:
                levels[i] = int(d)
        return levels

    scored: Dict[tuple, ConvergingPair] = {}
    for c in candidates:
        pre1, pre2 = fresh.get(c, (None, None))
        raw1: Optional[np.ndarray] = None
        cached1 = result.d1_rows.get(c)
        if cached1 is None:
            budget.charge("topk", "g1", 1)
            if pre1 is not None:
                lv1 = pre1
            else:
                raw1 = bfs_levels(csr1, csr1.index[c])
                lv1 = raw1.astype(np.int64)
        else:
            lv1 = row_to_levels(cached1, csr1.index)
        cached2 = result.d2_rows.get(c)
        if cached2 is None:
            budget.charge("topk", "g2", 1)
            if pre2 is not None:
                lv2 = pre2
            else:
                # Serial fresh row: the running k-th Δ is live here, so
                # the full dynamic prune applies.  The charge above is
                # deliberately unconditional — a skipped traversal still
                # obtained its SSSP *result* (provably all-Δ≤kth), and
                # the paper's budget counts results, not edges scanned.
                theta = tracker.threshold if tracker is not None else 0
                bound_lv1 = raw1 if raw1 is not None else lv1
                if plan is not None and tracker is not None and (
                    source_bound(bound_lv1, plan) < theta
                ):
                    lv2 = lv1
                elif raw1 is not None:
                    cut = (
                        int(raw1.max()) - theta if tracker is not None
                        else None
                    )
                    lv2 = repair_levels(delta, raw1, max_level=cut)[
                        align
                    ].astype(np.int64)
                elif tracker is not None:
                    lv2 = bounded_bfs_levels(
                        csr2, csr2.index[c], int(lv1.max()) - theta
                    )[align].astype(np.int64)
                else:
                    lv2 = bfs_levels(csr2, csr2.index[c])[align].astype(
                        np.int64
                    )
        else:
            lv2 = row_to_levels(cached2, csr1.index)
        reached = lv1 != UNREACHED
        reached[csr1.index[c]] = False
        hits = np.flatnonzero(reached & (lv1 - lv2 > 0))
        new_deltas: List[int] = []
        for j in hits:
            v = nodes[j]
            key = canonical_pair(c, v)
            if key not in scored:
                scored[key] = ConvergingPair(
                    key[0], key[1], int(lv1[j]), int(lv2[j])
                )
                if tracker is not None:
                    new_deltas.append(int(lv1[j]) - int(lv2[j]))
        # Only first-sighting deltas feed the tracker: offering a pair
        # from both endpoints would inflate the running k-th and
        # over-prune past the byte-identity guarantee.
        if tracker is not None and new_deltas:
            tracker.offer(np.asarray(new_deltas, dtype=np.int64))
    return scored
