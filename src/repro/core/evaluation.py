"""Evaluation metrics: coverage and candidate-quality diagnostics.

The paper's single performance measure is **coverage**: the percentage of
the true top-k converging pairs retrieved, where a pair counts as
retrieved iff at least one of its endpoints is in the candidate set (the
generic algorithm then surfaces it for sure).  Figure 2 adds two
candidate-quality diagnostics: the fraction of candidates that are
endpoints of ``G^p_k`` at all, and the fraction that land in the greedy
vertex cover.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence, Set, Tuple

from repro.core.pairgraph import PairGraph
from repro.core.pairs import ConvergingPair, canonical_pair

Node = Hashable
Pair = Tuple[Node, Node]


def _as_pair_set(pairs: Iterable) -> Set[Pair]:
    out: Set[Pair] = set()
    for p in pairs:
        if isinstance(p, ConvergingPair):
            out.add(p.pair)
        else:
            out.add(canonical_pair(*p))
    return out


def coverage(found_pairs: Iterable, true_pairs: Iterable) -> float:
    """Fraction of the true top-k pairs present in ``found_pairs``.

    Both arguments accept :class:`ConvergingPair` objects or raw tuples.
    An empty truth set yields 1.0 (nothing to find).
    """
    truth = _as_pair_set(true_pairs)
    if not truth:
        return 1.0
    found = _as_pair_set(found_pairs)
    return len(found & truth) / len(truth)


def candidate_pair_coverage(candidates: Iterable[Node], true_pairs: Iterable) -> float:
    """Fraction of true pairs with >= 1 endpoint among ``candidates``.

    This is the paper's coverage measure, evaluated directly on the
    candidate set.  It provably equals :func:`coverage` of the generic
    algorithm's output whenever k is chosen by the δ-threshold rule (every
    candidate-incident pair scoring above the threshold *is* a true pair) —
    a property the integration tests check.
    """
    truth = _as_pair_set(true_pairs)
    if not truth:
        return 1.0
    cand = set(candidates)
    hit = sum(1 for u, v in truth if u in cand or v in cand)
    return hit / len(truth)


def endpoint_precision(candidates: Sequence[Node], pair_graph: PairGraph) -> float:
    """Fraction of candidates that are endpoints of ``G^p_k`` (Figure 2a)."""
    if not candidates:
        return 0.0
    endpoints = pair_graph.endpoints()
    return sum(1 for c in candidates if c in endpoints) / len(candidates)


def cover_precision(
    candidates: Sequence[Node], greedy_cover: Iterable[Node]
) -> float:
    """Fraction of candidates inside the greedy vertex cover (Figure 2b)."""
    if not candidates:
        return 0.0
    cover = set(greedy_cover)
    return sum(1 for c in candidates if c in cover) / len(candidates)


def coverage_curve(
    ranked_candidates: Sequence[Node], true_pairs: Iterable, budgets: Sequence[int]
) -> List[Tuple[int, float]]:
    """Coverage of the top-``m`` candidate prefix for each ``m`` in ``budgets``.

    Useful for cost–coverage plots when a selector's ranking is
    budget-independent (the centrality and landmark families): one run at
    the largest budget yields the whole curve.
    """
    truth = _as_pair_set(true_pairs)
    curve: List[Tuple[int, float]] = []
    for m in budgets:
        prefix = ranked_candidates[:m]
        curve.append((m, candidate_pair_coverage(prefix, truth)))
    return curve
