"""The single-source shortest-path budget (Problem 2).

The paper's central resource model: one SSSP computation is the unit of
cost, and an algorithm solving the budgeted path-cover problem with
parameter ``m`` may perform **exactly 2m** SSSP computations in total
across the two snapshots (Table 1 shows how each approach splits them
between candidate generation and the top-k phase).

:class:`SPBudget` makes that model *enforced and auditable* rather than
advisory: every distance computation in the selection and top-k code paths
goes through :meth:`SPBudget.charge`, overdrafts raise
:class:`BudgetExceededError`, and the per-phase ledger lets the test suite
assert that measured costs equal Table 1's formulas exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class BudgetExceededError(RuntimeError):
    """Raised when a charge would push spending past the SSSP budget."""


@dataclass
class ChargeRecord:
    """One ledger entry: ``count`` SSSPs on ``snapshot`` during ``phase``."""

    phase: str
    snapshot: str
    count: int


class SPBudget:
    """An enforcing counter of single-source shortest-path computations.

    Parameters
    ----------
    limit:
        Maximum total number of SSSP computations (the paper's ``2m``).
        ``None`` disables enforcement (used by the unbudgeted Incidence
        baseline, which still benefits from the audit trail).

    Examples
    --------
    >>> budget = SPBudget(4)
    >>> budget.charge("generation", "g1", 2)
    >>> budget.spent
    2
    >>> budget.remaining
    2
    >>> budget.charge("topk", "g2", 3)
    Traceback (most recent call last):
        ...
    repro.core.budget.BudgetExceededError: ...
    """

    def __init__(self, limit: int | None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"budget limit must be non-negative, got {limit}")
        self.limit = limit
        self._ledger: List[ChargeRecord] = []
        self._spent = 0

    # ------------------------------------------------------------------
    @property
    def spent(self) -> int:
        """Total SSSP computations charged so far."""
        return self._spent

    @property
    def remaining(self) -> int:
        """SSSPs still affordable (a large sentinel when unenforced)."""
        if self.limit is None:
            return 2**62
        return self.limit - self._spent

    def can_afford(self, count: int) -> bool:
        """True if ``count`` more SSSPs fit in the budget."""
        return count <= self.remaining

    def charge(self, phase: str, snapshot: str, count: int = 1) -> None:
        """Record ``count`` SSSP computations.

        Parameters
        ----------
        phase:
            Free-form phase label — the paper's two phases are
            ``"generation"`` (candidate endpoint selection) and
            ``"topk"`` (shortest paths from the candidates).
        snapshot:
            Which snapshot was traversed (``"g1"`` or ``"g2"``) — Table 1
            distinguishes them (dispersion only pays on ``G_t1`` during
            generation, for example).
        count:
            Number of SSSPs, >= 1.

        Raises
        ------
        BudgetExceededError
            If the charge would exceed :attr:`limit`.  The charge is not
            recorded in that case.
        """
        if count < 1:
            raise ValueError(f"charge count must be >= 1, got {count}")
        if not self.can_afford(count):
            raise BudgetExceededError(
                f"charging {count} SSSP(s) in phase {phase!r} would spend "
                f"{self._spent + count} > limit {self.limit}"
            )
        self._ledger.append(ChargeRecord(phase=phase, snapshot=snapshot, count=count))
        self._spent += count

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def by_phase(self) -> Dict[str, int]:
        """Total SSSPs per phase label."""
        totals: Counter = Counter()
        for rec in self._ledger:
            totals[rec.phase] += rec.count
        return dict(totals)

    def by_snapshot(self) -> Dict[str, int]:
        """Total SSSPs per snapshot label."""
        totals: Counter = Counter()
        for rec in self._ledger:
            totals[rec.snapshot] += rec.count
        return dict(totals)

    def ledger(self) -> Tuple[ChargeRecord, ...]:
        """The raw charge records, in order."""
        return tuple(self._ledger)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        limit = "∞" if self.limit is None else self.limit
        return f"SPBudget(spent={self._spent}, limit={limit})"
