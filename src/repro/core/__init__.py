"""Core contribution: top-k converging pairs under an SSSP budget.

This subpackage implements the paper's primary machinery:

* :mod:`repro.core.pairs` — exact ground truth: the convergence score
  ``Δ(u,v) = d_t1(u,v) − d_t2(u,v)``, its distribution, the δ-threshold
  rule that makes the top-k set unique, and the top-k pairs themselves.
* :mod:`repro.core.pairgraph` — the pair graph ``G^p_k`` whose edges are
  the top-k converging pairs.
* :mod:`repro.core.cover` — greedy vertex cover / budgeted max coverage
  over ``G^p_k`` (the "greedy-cover" oracle).
* :mod:`repro.core.budget` — the auditable SSSP budget every algorithm
  runs under (Problem 2).
* :mod:`repro.core.algorithm` — the generic top-k algorithm (Algorithm 1)
  parameterised by a candidate selector.
* :mod:`repro.core.evaluation` — coverage and candidate-quality metrics.
"""

from repro.core.pairs import (
    ConvergingPair,
    canonical_pair,
    converging_pairs_at_threshold,
    delta_histogram,
    k_for_delta_threshold,
    max_delta,
    pair_delta,
    top_k_converging_pairs,
)
from repro.core.pairgraph import PairGraph
from repro.core.cover import (
    exact_min_vertex_cover,
    greedy_max_coverage,
    greedy_vertex_cover,
)
from repro.core.budget import BudgetExceededError, SPBudget
from repro.core.algorithm import TopKResult, find_top_k_converging_pairs
from repro.core.monitoring import ConvergenceMonitor, WindowReport
from repro.core.evaluation import (
    candidate_pair_coverage,
    coverage,
    cover_precision,
    endpoint_precision,
)

__all__ = [
    "ConvergingPair",
    "canonical_pair",
    "converging_pairs_at_threshold",
    "delta_histogram",
    "k_for_delta_threshold",
    "max_delta",
    "pair_delta",
    "top_k_converging_pairs",
    "PairGraph",
    "exact_min_vertex_cover",
    "greedy_max_coverage",
    "greedy_vertex_cover",
    "BudgetExceededError",
    "SPBudget",
    "TopKResult",
    "find_top_k_converging_pairs",
    "ConvergenceMonitor",
    "WindowReport",
    "candidate_pair_coverage",
    "coverage",
    "cover_precision",
    "endpoint_precision",
]
