"""Continuous convergence monitoring over an edge stream (extension).

The paper studies a single snapshot pair; a dynamic graph is really a
*sequence* of slices ``S_1, S_2, ...`` (its own Section 3 notation), and
the natural production deployment runs the budgeted detector repeatedly:
at every checkpoint, compare against the previous checkpoint and report
who converged in that window.

:class:`ConvergenceMonitor` packages that loop:

* one budgeted Algorithm 1 run per consecutive checkpoint pair, each
  under its own fresh ``2m`` SSSP budget;
* a per-window report (:class:`WindowReport`) with the found pairs and
  the audited spend;
* cross-window summaries — nodes that keep appearing in converging
  pairs (:meth:`ConvergenceMonitor.recurrent_nodes`) are exactly the
  "protein joining a community" / "suspect building coalitions" signal
  the paper's introduction motivates.

This is an extension faithful to the paper's cost model, not something
its evaluation covers; the tests pin its semantics (window pairing,
budget isolation, recurrence counting).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence

from repro.core.algorithm import TopKResult, find_top_k_converging_pairs
from repro.core.pairs import ConvergingPair
from repro.graph.dynamic import TemporalGraph
from repro.selection.base import CandidateSelector

Node = Hashable


@dataclass
class WindowReport:
    """Outcome of one monitoring window.

    Attributes
    ----------
    start_fraction / end_fraction:
        The stream fractions whose snapshots bound this window.
    result:
        The full :class:`~repro.core.algorithm.TopKResult` of the
        budgeted run (pairs, candidates, audited budget).
    """

    start_fraction: float
    end_fraction: float
    result: TopKResult

    @property
    def pairs(self) -> List[ConvergingPair]:
        """The converging pairs found in this window."""
        return self.result.pairs

    @property
    def sp_spent(self) -> int:
        """SSSP computations this window consumed."""
        return self.result.budget.spent


class ConvergenceMonitor:
    """Run the budgeted detector over consecutive stream checkpoints.

    Parameters
    ----------
    temporal:
        The full edge stream.
    selector_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.selection.base.CandidateSelector` per window
        (selectors are cheap; a fresh one avoids cross-window state).
    k:
        Pairs to report per window.
    m:
        Budget parameter per window (``2m`` SSSPs each).
    seed:
        Base seed; window ``i`` uses ``seed + i`` so windows are
        independent but the whole run is reproducible.
    """

    def __init__(
        self,
        temporal: TemporalGraph,
        selector_factory: Callable[[], CandidateSelector],
        k: int = 20,
        m: int = 20,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self.temporal = temporal
        self.selector_factory = selector_factory
        self.k = k
        self.m = m
        self.seed = seed
        self._reports: List[WindowReport] = []

    def run(self, checkpoints: Sequence[float]) -> List[WindowReport]:
        """Detect converging pairs in every consecutive checkpoint window.

        ``checkpoints`` are stream fractions in strictly increasing
        order; ``len(checkpoints) - 1`` windows are produced.  Reports
        accumulate on the monitor (and are returned) so summaries can
        span multiple ``run`` calls.
        """
        if len(checkpoints) < 2:
            raise ValueError("need at least two checkpoints to form a window")
        if any(b <= a for a, b in zip(checkpoints, checkpoints[1:])):
            raise ValueError(f"checkpoints must increase: {checkpoints}")
        reports: List[WindowReport] = []
        for i, (f1, f2) in enumerate(zip(checkpoints, checkpoints[1:])):
            g1, g2 = self.temporal.snapshot_pair(f1, f2)
            result = find_top_k_converging_pairs(
                g1,
                g2,
                k=self.k,
                m=self.m,
                selector=self.selector_factory(),
                seed=self.seed + len(self._reports) + i,
                validate=False,  # snapshots of one stream are valid by construction
            )
            reports.append(
                WindowReport(start_fraction=f1, end_fraction=f2, result=result)
            )
        self._reports.extend(reports)
        return reports

    @property
    def reports(self) -> List[WindowReport]:
        """All window reports accumulated so far."""
        return list(self._reports)

    def total_sp_spent(self) -> int:
        """SSSP computations across all windows (``<= 2m * windows``)."""
        return sum(r.sp_spent for r in self._reports)

    def recurrent_nodes(self, min_windows: int = 2) -> List[Node]:
        """Nodes appearing in converging pairs of >= ``min_windows`` windows.

        Sorted by the number of distinct windows (descending, then node
        repr).  These are the entities *persistently* drawing closer to
        others — the paper's community-joining / coalition signal.
        """
        if min_windows < 1:
            raise ValueError(f"min_windows must be >= 1, got {min_windows}")
        counts: Counter = Counter()
        for report in self._reports:
            window_nodes = set()
            for pair in report.pairs:
                window_nodes.add(pair.u)
                window_nodes.add(pair.v)
            counts.update(window_nodes)
        qualified = [u for u, c in counts.items() if c >= min_windows]
        return sorted(qualified, key=lambda u: (-counts[u], repr(u)))

    def pair_timeline(self) -> List[tuple]:
        """``(start, end, pair, delta)`` rows across all windows, in order."""
        rows = []
        for report in self._reports:
            for pair in report.pairs:
                rows.append(
                    (report.start_fraction, report.end_fraction,
                     pair.pair, pair.delta)
                )
        return rows
