"""Continuous convergence monitoring over an edge stream (extension).

The paper studies a single snapshot pair; a dynamic graph is really a
*sequence* of slices ``S_1, S_2, ...`` (its own Section 3 notation), and
the natural production deployment runs the budgeted detector repeatedly:
at every checkpoint, compare against the previous checkpoint and report
who converged in that window.

:class:`ConvergenceMonitor` packages that loop:

* one budgeted Algorithm 1 run per consecutive checkpoint pair, each
  under its own fresh ``2m`` SSSP budget;
* a per-window report (:class:`WindowReport`) with the found pairs and
  the audited spend;
* cross-window summaries — nodes that keep appearing in converging
  pairs (:meth:`ConvergenceMonitor.recurrent_nodes`) are exactly the
  "protein joining a community" / "suspect building coalitions" signal
  the paper's introduction motivates.

This is an extension faithful to the paper's cost model, not something
its evaluation covers; the tests pin its semantics (window pairing,
budget isolation, recurrence counting).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.core.algorithm import TopKResult, find_top_k_converging_pairs
from repro.core.budget import SPBudget
from repro.core.pairs import ConvergingPair
from repro.graph.dynamic import TemporalGraph
from repro.graph.validation import (
    GraphValidationError,
    check_snapshot_pair,
    repair_snapshot_pair,
)
from repro.resilience import (
    CheckpointStore,
    Deadline,
    RetryPolicy,
    describe_error,
    log_event,
    run_guarded,
)
from repro.selection.base import CandidateSelector

Node = Hashable

#: Accepted values of ``ConvergenceMonitor(on_invalid_window=...)``.
INVALID_WINDOW_POLICIES = ("fail", "skip-and-log", "repair")


@dataclass
class WindowReport:
    """Outcome of one monitoring window.

    Attributes
    ----------
    start_fraction / end_fraction:
        The stream fractions whose snapshots bound this window.
    result:
        The full :class:`~repro.core.algorithm.TopKResult` of the
        budgeted run (pairs, candidates, audited budget) — ``None``
        when the window failed.
    error:
        ``None`` on success; otherwise the one-line ``Type: message``
        description of the failure that was absorbed under
        ``on_error="skip"``.
    resumed:
        Whether this report was restored from a checkpoint instead of
        recomputed.
    """

    start_fraction: float
    end_fraction: float
    result: Optional[TopKResult] = None
    error: Optional[str] = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        """Whether the window's budgeted run completed."""
        return self.error is None

    @property
    def pairs(self) -> List[ConvergingPair]:
        """The converging pairs found in this window ([] on failure)."""
        return [] if self.result is None else self.result.pairs

    @property
    def sp_spent(self) -> int:
        """SSSP computations this window consumed (0 on failure)."""
        return 0 if self.result is None else self.result.budget.spent

    # ------------------------------------------------------------------
    # Checkpoint (de)serialisation — plain JSON-able payloads.
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-serialisable form of a *successful* report."""
        assert self.result is not None
        return {
            "pairs": [[p.u, p.v, p.d1, p.d2] for p in self.result.pairs],
            "candidates": list(self.result.candidates),
            "limit": self.result.budget.limit,
            "ledger": [
                [rec.phase, rec.snapshot, rec.count]
                for rec in self.result.budget.ledger()
            ],
        }

    @classmethod
    def from_payload(
        cls, start: float, end: float, payload: Dict[str, Any]
    ) -> "WindowReport":
        """Rebuild a report (including its audited budget) from a payload."""
        budget = SPBudget(payload["limit"])
        for phase, snapshot, count in payload["ledger"]:
            budget.charge(phase, snapshot, count)
        result = TopKResult(
            pairs=[
                ConvergingPair(u, v, d1, d2)
                for u, v, d1, d2 in payload["pairs"]
            ],
            candidates=list(payload["candidates"]),
            budget=budget,
        )
        return cls(
            start_fraction=start, end_fraction=end, result=result,
            resumed=True,
        )


class ConvergenceMonitor:
    """Run the budgeted detector over consecutive stream checkpoints.

    Parameters
    ----------
    temporal:
        The full edge stream.
    selector_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.selection.base.CandidateSelector` per window
        (selectors are cheap; a fresh one avoids cross-window state).
    k:
        Pairs to report per window.
    m:
        Budget parameter per window (``2m`` SSSPs each).
    seed:
        Base seed; window ``i`` uses ``seed + i`` so windows are
        independent but the whole run is reproducible.
    retry_policy:
        Optional :class:`~repro.resilience.policy.RetryPolicy` re-running
        a transiently failing window before it escalates.
    deadline_s:
        Per-window deadline in seconds (checked between retry attempts);
        ``None`` disables it.
    on_error:
        ``"fail"`` (default) propagates a window failure; ``"skip"``
        records it on the report's ``error`` field and continues with
        the remaining windows.
    on_invalid_window:
        What to do when a window's snapshot pair violates the
        insertion-only model (e.g. the stream carried a deletion event
        that crossed a checkpoint).  ``"fail"`` (default) raises the
        :class:`~repro.graph.validation.GraphValidationError`;
        ``"skip-and-log"`` records it on the report and continues —
        windows untouched by the dirt are unaffected; ``"repair"``
        projects the later snapshot onto a valid superset of the
        earlier one via
        :func:`~repro.graph.validation.repair_snapshot_pair` and runs
        on the repaired pair (logged, and checkpointed under a
        distinct key so clean and repaired results never mix).
    checkpoint_store:
        Optional :class:`~repro.resilience.checkpoint.CheckpointStore`;
        completed windows are persisted and :meth:`run` restores them
        instead of re-spending their SSSP budget.  Use a distinct
        directory per (stream, selector) job — the key covers the
        window bounds and (k, m, seed), not the input identity.
    resume:
        Whether :meth:`run` may *read* existing checkpoints (writing
        happens whenever a store is configured).  The CLI maps its
        ``--resume`` flag here.
    """

    def __init__(
        self,
        temporal: TemporalGraph,
        selector_factory: Callable[[], CandidateSelector],
        k: int = 20,
        m: int = 20,
        seed: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
        on_error: str = "fail",
        on_invalid_window: str = "fail",
        checkpoint_store: Optional[CheckpointStore] = None,
        resume: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if on_error not in ("fail", "skip"):
            raise ValueError(
                f"on_error must be 'fail' or 'skip', got {on_error!r}"
            )
        if on_invalid_window not in INVALID_WINDOW_POLICIES:
            raise ValueError(
                "on_invalid_window must be one of "
                f"{INVALID_WINDOW_POLICIES}, got {on_invalid_window!r}"
            )
        self.temporal = temporal
        self.selector_factory = selector_factory
        self.k = k
        self.m = m
        self.seed = seed
        self.retry_policy = retry_policy
        self.deadline_s = deadline_s
        self.on_error = on_error
        self.on_invalid_window = on_invalid_window
        self.checkpoint_store = checkpoint_store
        self.resume = resume
        self._reports: List[WindowReport] = []

    def _window_key(self, f1: float, f2: float, seed: int) -> list:
        return ["monitor", f1, f2, self.k, self.m, seed]

    def run(self, checkpoints: Sequence[float]) -> List[WindowReport]:
        """Detect converging pairs in every consecutive checkpoint window.

        ``checkpoints`` are stream fractions in ``(0, 1]`` in strictly
        increasing order; ``len(checkpoints) - 1`` windows are produced.
        Reports accumulate on the monitor (and are returned) so
        summaries can span multiple ``run`` calls.

        With a ``checkpoint_store``, each completed window is persisted
        and a rerun after a crash restores it — pairs, candidates, and
        audited budget — without re-spending its ``2m`` SSSPs.
        """
        if len(checkpoints) < 2:
            raise ValueError("need at least two checkpoints to form a window")
        bad = [c for c in checkpoints if not 0.0 < c <= 1.0]
        if bad:
            raise ValueError(
                f"checkpoint fractions must be in (0, 1], got {bad}"
            )
        if any(b <= a for a, b in zip(checkpoints, checkpoints[1:])):
            raise ValueError(f"checkpoints must increase: {checkpoints}")
        reports: List[WindowReport] = []
        for i, (f1, f2) in enumerate(zip(checkpoints, checkpoints[1:])):
            reports.append(
                self._run_window(f1, f2, self.seed + len(self._reports) + i)
            )
        self._reports.extend(reports)
        return reports

    def _run_window(self, f1: float, f2: float, seed: int) -> WindowReport:
        """One window under the full resilience stack."""
        unit = f"window:{f1:g}->{f2:g}"
        # Materialise and validate *outside* run_guarded: an invalid
        # snapshot pair is deterministic dirt, not a transient fault —
        # retrying it would spend attempts on a guaranteed failure, and
        # on_error="skip" must not mask it either.
        g1, g2 = self.temporal.snapshot_pair(f1, f2)
        repaired = False
        try:
            check_snapshot_pair(g1, g2)
        except GraphValidationError as exc:
            if self.on_invalid_window == "fail":
                raise
            error = describe_error(exc)
            if self.on_invalid_window == "skip-and-log":
                log_event(
                    "window.invalid", unit=unit, error=error, action="skip",
                )
                return WindowReport(
                    start_fraction=f1, end_fraction=f2, error=error
                )
            g2, repair = repair_snapshot_pair(g1, g2)
            repaired = True
            log_event(
                "window.invalid", unit=unit, error=error, action="repair",
                detail=repair.summary(),
            )
        key = self._window_key(f1, f2, seed)
        if repaired:
            # Repaired results depend on the projection, not just the
            # stream cut — never let them shadow a clean window's entry.
            key = key + ["repaired"]
        if self.checkpoint_store is not None and self.resume:
            payload = self.checkpoint_store.get(key)
            if payload is not None:
                log_event("checkpoint.hit", unit=unit)
                return WindowReport.from_payload(f1, f2, payload)

        def compute() -> TopKResult:
            return find_top_k_converging_pairs(
                g1,
                g2,
                k=self.k,
                m=self.m,
                selector=self.selector_factory(),
                seed=seed,
                validate=False,  # the pair was validated (or repaired) above
            )

        deadline = (
            Deadline(self.deadline_s) if self.deadline_s is not None else None
        )
        result, error = run_guarded(
            compute,
            unit=unit,
            retry_policy=self.retry_policy,
            deadline=deadline,
            on_error=self.on_error,
        )
        if error is not None:
            log_event("window.failed", unit=unit, error=error)
            return WindowReport(
                start_fraction=f1, end_fraction=f2, error=error
            )
        report = WindowReport(start_fraction=f1, end_fraction=f2, result=result)
        if self.checkpoint_store is not None:
            self.checkpoint_store.put(key, report.to_payload())
        return report

    @property
    def reports(self) -> List[WindowReport]:
        """All window reports accumulated so far."""
        return list(self._reports)

    def total_sp_spent(self) -> int:
        """SSSP computations across all windows (``<= 2m * windows``)."""
        return sum(r.sp_spent for r in self._reports)

    def failed_windows(self) -> List[WindowReport]:
        """Windows whose budgeted run failed (``on_error="skip"`` only).

        The complement of the windows :meth:`recurrent_nodes` and
        :meth:`pair_timeline` summarise — a non-empty return means the
        summaries are computed over partial data.
        """
        return [r for r in self._reports if not r.ok]

    def recurrent_nodes(self, min_windows: int = 2) -> List[Node]:
        """Nodes appearing in converging pairs of >= ``min_windows`` windows.

        Sorted by the number of distinct windows (descending, then node
        repr).  These are the entities *persistently* drawing closer to
        others — the paper's community-joining / coalition signal.
        """
        if min_windows < 1:
            raise ValueError(f"min_windows must be >= 1, got {min_windows}")
        counts: Counter = Counter()
        for report in self._reports:
            window_nodes = set()
            for pair in report.pairs:
                window_nodes.add(pair.u)
                window_nodes.add(pair.v)
            counts.update(window_nodes)
        qualified = [u for u, c in counts.items() if c >= min_windows]
        return sorted(qualified, key=lambda u: (-counts[u], repr(u)))

    def pair_timeline(self) -> List[tuple]:
        """``(start, end, pair, delta)`` rows across all windows, in order."""
        rows = []
        for report in self._reports:
            for pair in report.pairs:
                rows.append(
                    (report.start_fraction, report.end_fraction,
                     pair.pair, pair.delta)
                )
        return rows
