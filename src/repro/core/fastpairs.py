"""Vectorised (CSR) ground-truth engine for unweighted snapshot pairs.

The streaming ground truth in :mod:`repro.core.pairs` spends most of its
time in the per-pair Python loop comparing the two distance maps.  For
unweighted graphs the whole comparison is three numpy operations per
source: two level arrays, a subtraction, and a bincount — an order of
magnitude faster at catalog scale.

Both passes come in two flavours selected by the ``incremental`` flag:
the plain CSR engine runs two independent BFS traversals per source,
while the incremental engine precomputes one
:class:`~repro.graph.incremental.SnapshotDelta` and *repairs* each t1
level array into the t2 one (:mod:`repro.graph.incremental`), touching
only the region the inserted edges affect.

:func:`repro.core.pairs.delta_histogram` and
:func:`repro.core.pairs.converging_pairs_at_threshold` dispatch here
automatically (``engine="auto"`` resolves to the incremental engine for
unweighted snapshots); the equivalence tests assert all engines agree
exactly, pair for pair.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, UNREACHED, bfs_levels
from repro.graph.graph import Graph
from repro.graph.incremental import SnapshotDelta, levels_pair_indexed


def _csr_views(g1: Graph, g2: Graph) -> Tuple[CSRGraph, CSRGraph, np.ndarray]:
    """CSR views of both snapshots plus the V1 -> csr2-index map.

    ``csr2`` keeps the full ``G_t2`` (paths may route through new
    nodes); the returned map aligns its level arrays with ``csr1``'s
    node order.
    """
    csr1 = CSRGraph.from_graph(g1)
    csr2 = CSRGraph.from_graph(g2)
    mapping = np.array([csr2.index[u] for u in csr1.nodes], dtype=np.int64)
    return csr1, csr2, mapping


def _row_stream(
    g1: Graph, g2: Graph, incremental: bool
) -> Tuple[Sequence[object], Iterator[Tuple[int, np.ndarray, np.ndarray]]]:
    """t1 node order plus a ``(i, lv1, lv2)`` stream over every t1 source.

    Both level arrays are aligned to ``csr1``'s node order and freshly
    allocated (consumers may mutate them).  ``incremental=True`` builds
    the snapshot delta once and repairs each t1 row into its t2 row;
    ``incremental=False`` runs two independent traversals per source.
    """
    if incremental:
        delta = SnapshotDelta.from_graphs(g1, g2)
        mapping = delta.mapping

        def repaired() -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
            for i in range(delta.csr1.num_nodes):
                lv1, lv2 = levels_pair_indexed(delta, i)
                yield i, lv1, lv2[mapping]

        return delta.csr1.nodes, repaired()
    csr1, csr2, mapping = _csr_views(g1, g2)

    def recomputed() -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        for i in range(csr1.num_nodes):
            yield i, bfs_levels(csr1, i), bfs_levels(csr2, mapping[i])[mapping]

    return csr1.nodes, recomputed()


def csr_delta_histogram(
    g1: Graph, g2: Graph, incremental: bool = False
) -> Counter:
    """Exact Δ histogram over connected t1 pairs (unweighted fast path)."""
    _, rows = _row_stream(g1, g2, incremental)
    hist: Counter = Counter()
    for i, lv1, lv2 in rows:
        lv1[: i + 1] = UNREACHED  # count each unordered pair once
        reached = lv1 != UNREACHED
        deltas = lv1[reached] - lv2[reached]
        if deltas.size:
            if deltas.min() < 0:
                raise ValueError(
                    "negative distance change: G_t1 is not a subgraph of "
                    "G_t2 (run check_snapshot_pair for details)"
                )
            counts = np.bincount(deltas)
            # flatnonzero covers the 0 bin too when Δ = 0 pairs exist.
            for d in np.flatnonzero(counts):
                hist[int(d)] += int(counts[d])
    return hist


def csr_pairs_at_threshold(
    g1: Graph, g2: Graph, delta_min: float, incremental: bool = False
) -> List[Tuple[object, object, int, int]]:
    """All ``(u, v, d1, d2)`` rows with ``Δ >= delta_min`` (u-index < v-index).

    Returned as raw tuples; :mod:`repro.core.pairs` wraps them into
    canonical :class:`~repro.core.pairs.ConvergingPair` objects so both
    engines share one construction path.
    """
    nodes, stream = _row_stream(g1, g2, incremental)
    rows: List[Tuple[object, object, int, int]] = []
    for i, lv1, lv2 in stream:
        lv1[: i + 1] = UNREACHED
        reached = lv1 != UNREACHED
        hits = np.flatnonzero(reached & (lv1 - lv2 >= delta_min))
        u = nodes[i]
        for j in hits:
            rows.append((u, nodes[j], int(lv1[j]), int(lv2[j])))
    return rows
