"""Vectorised (CSR) ground-truth engine for unweighted snapshot pairs.

The streaming ground truth in :mod:`repro.core.pairs` spends most of its
time in the per-pair Python loop comparing the two distance maps.  For
unweighted graphs the whole comparison is three numpy operations per
source: two level arrays, a subtraction, and a bincount — an order of
magnitude faster at catalog scale.

Both passes come in two flavours selected by the ``incremental`` flag:
the plain CSR engine runs two independent BFS traversals per source,
while the incremental engine precomputes one
:class:`~repro.graph.incremental.SnapshotDelta` and *repairs* each t1
level array into the t2 one (:mod:`repro.graph.incremental`), touching
only the region the inserted edges affect.

:func:`repro.core.pairs.delta_histogram` and
:func:`repro.core.pairs.converging_pairs_at_threshold` dispatch here
automatically (``engine="auto"`` resolves to the incremental engine for
unweighted snapshots); the equivalence tests assert all engines agree
exactly, pair for pair.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, UNREACHED, bfs_levels
from repro.graph.graph import Graph
from repro.graph.incremental import SnapshotDelta, repair_levels
from repro.graph.msbfs import DEFAULT_BATCH, iter_msbfs_rows, msbfs_levels
from repro.graph.prune import (
    KthTracker,
    PrunePlan,
    PruneStats,
    bounded_bfs_levels,
    source_bound,
)


def _csr_views(g1: Graph, g2: Graph) -> Tuple[CSRGraph, CSRGraph, np.ndarray]:
    """CSR views of both snapshots plus the V1 -> csr2-index map.

    ``csr2`` keeps the full ``G_t2`` (paths may route through new
    nodes); the returned map aligns its level arrays with ``csr1``'s
    node order.
    """
    csr1 = CSRGraph.from_graph(g1)
    csr2 = CSRGraph.from_graph(g2)
    mapping = np.array([csr2.index[u] for u in csr1.nodes], dtype=np.int64)
    return csr1, csr2, mapping


def _row_stream(
    g1: Graph, g2: Graph, incremental: bool
) -> Tuple[Sequence[object], Iterator[Tuple[int, np.ndarray, np.ndarray]]]:
    """t1 node order plus a ``(i, lv1, lv2)`` stream over every t1 source.

    Both level arrays are aligned to ``csr1``'s node order and freshly
    allocated (consumers may mutate them — :func:`iter_msbfs_rows` and
    :func:`msbfs_levels` rows honour the same contract).  The t1 rows
    advance through the bit-parallel multi-source kernel, 64 traversals
    per frontier sweep.  ``incremental=True`` builds the snapshot delta
    once and repairs each t1 row into its t2 row; ``incremental=False``
    also batches the independent t2 traversals.
    """
    if incremental:
        delta = SnapshotDelta.from_graphs(g1, g2)
        mapping = delta.mapping

        def repaired() -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
            for i, lv1 in iter_msbfs_rows(
                delta.csr1, range(delta.csr1.num_nodes)
            ):
                yield i, lv1, repair_levels(delta, lv1)[mapping]

        return delta.csr1.nodes, repaired()
    csr1, csr2, mapping = _csr_views(g1, g2)

    def recomputed() -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        n = csr1.num_nodes
        for start in range(0, n, DEFAULT_BATCH):
            stop = min(start + DEFAULT_BATCH, n)
            block1 = msbfs_levels(csr1, range(start, stop))
            block2 = msbfs_levels(csr2, mapping[start:stop])
            for j in range(stop - start):
                yield start + j, block1[j], block2[j][mapping]

    return csr1.nodes, recomputed()


def csr_delta_histogram(
    g1: Graph, g2: Graph, incremental: bool = False
) -> Counter:
    """Exact Δ histogram over connected t1 pairs (unweighted fast path)."""
    _, rows = _row_stream(g1, g2, incremental)
    hist: Counter = Counter()
    for i, lv1, lv2 in rows:
        # reprolint: disable=R011 -- _row_stream rows are freshly allocated per source (documented), so in-place masking saves an O(n) copy per row
        lv1[: i + 1] = UNREACHED  # count each unordered pair once
        reached = lv1 != UNREACHED
        deltas = lv1[reached] - lv2[reached]
        if deltas.size:
            if deltas.min() < 0:
                raise ValueError(
                    "negative distance change: G_t1 is not a subgraph of "
                    "G_t2 (run check_snapshot_pair for details)"
                )
            counts = np.bincount(deltas)
            # flatnonzero covers the 0 bin too when Δ = 0 pairs exist.
            for d in np.flatnonzero(counts):
                hist[int(d)] += int(counts[d])
    return hist


def csr_pairs_at_threshold(
    g1: Graph,
    g2: Graph,
    delta_min: float,
    incremental: bool = False,
    prune: bool = False,
    stats: Optional[PruneStats] = None,
) -> List[Tuple[object, object, int, int]]:
    """All ``(u, v, d1, d2)`` rows with ``Δ >= delta_min`` (u-index < v-index).

    Returned as raw tuples; :mod:`repro.core.pairs` wraps them into
    canonical :class:`~repro.core.pairs.ConvergingPair` objects so both
    engines share one construction path.

    ``prune=True`` applies the static Δ-bound from
    :mod:`repro.graph.prune` at threshold ``θ = ⌈delta_min⌉``: sources
    whose bound falls below ``θ`` skip their t2 traversal entirely, and
    surviving traversals are cut at depth ``ecc1 − θ``.  The returned
    rows are identical, in identical order; ``stats`` (when given)
    receives the skip/cut counters.
    """
    if prune:
        return _pruned_pairs_at_threshold(
            g1, g2, delta_min, incremental=incremental, stats=stats
        )
    nodes, stream = _row_stream(g1, g2, incremental)
    rows: List[Tuple[object, object, int, int]] = []
    for i, lv1, lv2 in stream:
        # reprolint: disable=R011 -- _row_stream rows are freshly allocated per source (documented), so in-place masking saves an O(n) copy per row
        lv1[: i + 1] = UNREACHED
        reached = lv1 != UNREACHED
        hits = np.flatnonzero(reached & (lv1 - lv2 >= delta_min))
        u = nodes[i]
        for j in hits:
            rows.append((u, nodes[j], int(lv1[j]), int(lv2[j])))
    return rows


def _pruned_pairs_at_threshold(
    g1: Graph,
    g2: Graph,
    delta_min: float,
    incremental: bool,
    stats: Optional[PruneStats],
) -> List[Tuple[object, object, int, int]]:
    """Static-threshold pruned variant of :func:`csr_pairs_at_threshold`.

    Same row order as the unpruned engines: sources are visited in index
    order (the threshold is fixed, so there is no gain from reordering),
    each either skipped outright or traversed level-limited.
    """
    delta = SnapshotDelta.from_graphs(g1, g2)
    plan = PrunePlan.from_delta(delta)
    if stats is None:
        stats = PruneStats()
    # Δ values are integral on unweighted graphs, so a fractional
    # threshold rounds up to the first achievable one.
    theta = max(1, math.ceil(delta_min))
    nodes = delta.csr1.nodes
    rows: List[Tuple[object, object, int, int]] = []
    n = delta.csr1.num_nodes
    stats.sources += n
    for i, lv1 in iter_msbfs_rows(delta.csr1, range(n)):
        if source_bound(lv1, plan) < theta:
            stats.skipped += 1
            continue
        stats.cut += 1
        max_level = int(lv1.max()) - theta
        if incremental:
            lv2 = repair_levels(delta, lv1, max_level=max_level)[delta.mapping]
        else:
            lv2 = bounded_bfs_levels(
                delta.csr2, int(delta.mapping[i]), max_level
            )[delta.mapping]
        reached = lv1 != UNREACHED
        reached[: i + 1] = False
        hits = np.flatnonzero(reached & (lv1 - lv2 >= delta_min))
        u = nodes[i]
        for j in hits:
            rows.append((u, nodes[j], int(lv1[j]), int(lv2[j])))
    return rows


def csr_top_k_rows(
    g1: Graph,
    g2: Graph,
    k: int,
    *,
    incremental: bool = True,
    prune: bool = True,
    delta: Optional[SnapshotDelta] = None,
    rows1: Optional[Sequence[np.ndarray]] = None,
    stats: Optional[PruneStats] = None,
) -> List[Tuple[object, object, int, int]]:
    """Single-pass top-k candidate rows with dynamic Δ-aware pruning.

    Returns every ``(u, v, d1, d2)`` row whose Δ was at or above the
    *running* k-th best Δ at the moment its source was scored — a
    deterministic superset of the exact top-k.  The caller sorts by
    ``(−Δ, repr)`` and truncates; because the running threshold never
    exceeds the final k-th Δ, the truncation yields exactly the same
    pairs (ties included) as the unpruned two-pass engine.

    ``prune=True`` processes sources in decreasing bound order so the
    tracker fills with large Δ values early; as soon as the next bound
    drops below the running threshold, *all* remaining sources are
    skipped (their t2 traversals never run), and surviving traversals
    are cut at depth ``ecc1 − threshold``.  ``prune=False`` runs the
    same single-pass collection without bounds or cuts — the honest
    baseline the benchmark compares against.

    ``delta`` and ``rows1`` (precomputed t1 level rows, index-aligned,
    never mutated) let benchmarks time the t2 phase in isolation.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if delta is None:
        delta = SnapshotDelta.from_graphs(g1, g2)
    if stats is None:
        stats = PruneStats()
    csr1, csr2, mapping = delta.csr1, delta.csr2, delta.mapping
    n = csr1.num_nodes
    stats.sources += n
    nodes = csr1.nodes

    def t1_row(i: int) -> np.ndarray:
        if rows1 is not None:
            return rows1[i]
        return bfs_levels(csr1, i)

    if prune:
        plan = PrunePlan.from_delta(delta)
        bounds = np.empty(n, dtype=np.int64)
        eccs = np.empty(n, dtype=np.int64)
        for i in range(n):
            lv1 = t1_row(i)
            eccs[i] = int(lv1.max())
            bounds[i] = source_bound(lv1, plan)
        order = np.argsort(-bounds, kind="stable")
    else:
        order = np.arange(n)

    tracker = KthTracker(k)
    rows: List[Tuple[object, object, int, int]] = []
    compact_at = max(4 * k, 256)
    for pos in range(n):
        i = int(order[pos])
        theta = tracker.threshold
        if prune and bounds[i] < theta:
            # Bounds are sorted descending: every remaining source is
            # ruled out by the same comparison.
            stats.skipped += n - pos
            break
        lv1 = t1_row(i)
        if prune:
            stats.cut += 1
            max_level: Optional[int] = int(eccs[i]) - theta
        else:
            stats.full += 1
            max_level = None
        if incremental:
            lv2 = repair_levels(delta, lv1, max_level=max_level)[mapping]
        elif prune:
            lv2 = bounded_bfs_levels(csr2, int(mapping[i]), max_level)[mapping]
        else:
            lv2 = bfs_levels(csr2, int(mapping[i]))[mapping]
        valid = lv1 != UNREACHED
        valid[: i + 1] = False  # unordered pairs owned by the lower index
        deltas = lv1.astype(np.int64) - lv2.astype(np.int64)
        tracker.offer(deltas[valid])
        hits = np.flatnonzero(valid & (deltas >= theta))
        u = nodes[i]
        for j in hits:
            rows.append((u, nodes[int(j)], int(lv1[j]), int(lv2[j])))
        if len(rows) > compact_at:
            floor = tracker.threshold
            rows = [r for r in rows if r[2] - r[3] >= floor]
            compact_at = max(compact_at, 4 * len(rows))
    return rows
