"""Greedy vertex cover and budgeted max coverage over the pair graph.

Minimum vertex cover and budgeted max coverage are NP-hard even when
``G^p_k`` is known; the paper uses the classical greedy algorithm — pick
the node covering the most still-uncovered pairs, repeat — which carries a
logarithmic approximation guarantee for set cover and the familiar
``1 − 1/e`` guarantee for max coverage [24].  The greedy *full* cover is
the paper's "greedy-cover": the positive class of the classifiers and the
quality yardstick of Figure 2(b) and Table 3's "maxcover" column.

Both functions use lazy-greedy evaluation (a max-heap of stale gains,
re-scored on pop), which is equivalent to plain greedy for this
submodular objective but far faster on skewed pair graphs.
"""

from __future__ import annotations

import heapq
from typing import Hashable, List, Optional, Set, Tuple

from repro.core.pairgraph import PairGraph
from repro.core.pairs import canonical_pair

Node = Hashable


def _greedy_cover(
    pair_graph: PairGraph, budget: Optional[int]
) -> Tuple[List[Node], Set]:
    """Shared greedy loop; returns ``(selected_nodes, covered_pairs)``."""
    uncovered = pair_graph.pairs()
    selected: List[Node] = []
    covered: Set = set()
    # Heap entries: (-gain, tiebreak, node).  Gains only ever shrink as
    # pairs get covered, so a stale popped entry can be re-scored and
    # pushed back (lazy greedy).
    heap: List[Tuple[int, str, Node]] = [
        (-pair_graph.pair_degree(u), repr(u), u) for u in pair_graph.endpoints()
    ]
    heapq.heapify(heap)
    in_heap = {u for _, _, u in heap}

    while uncovered and heap and (budget is None or len(selected) < budget):
        neg_gain, _, u = heapq.heappop(heap)
        in_heap.discard(u)
        gain = sum(
            1 for v in pair_graph.partners(u) if canonical_pair(u, v) in uncovered
        )
        if gain == 0:
            continue
        # Stale check.  Heap gains only ever overestimate (coverage is
        # submodular), so if u's *fresh* key still beats the heap top's
        # (possibly stale, hence optimistic) key — including the repr
        # tie-break — u is the true greedy argmax.  Otherwise re-insert
        # with the fresh gain and try again.
        if heap and (-gain, repr(u)) > (heap[0][0], heap[0][1]):
            heapq.heappush(heap, (-gain, repr(u), u))
            in_heap.add(u)
            continue
        selected.append(u)
        for v in pair_graph.partners(u):
            pair = canonical_pair(u, v)
            if pair in uncovered:
                uncovered.discard(pair)
                covered.add(pair)
    return selected, covered


def greedy_vertex_cover(pair_graph: PairGraph) -> List[Node]:
    """Greedy vertex cover of ``G^p_k`` — the paper's "greedy-cover".

    Returns the selected nodes in pick order (most-covering first).  The
    result always covers every pair; its size is the "maxcover" column of
    Table 3.
    """
    selected, _ = _greedy_cover(pair_graph, budget=None)
    return selected


def exact_min_vertex_cover(
    pair_graph: PairGraph, max_pairs: int = 200
) -> List[Node]:
    """An exact minimum vertex cover by branch and bound.

    The classic edge-branching scheme: pick an uncovered pair ``(u, v)``
    — every cover contains ``u`` or ``v`` — and recurse on both choices,
    pruning branches that cannot beat the incumbent.  The greedy cover
    seeds the incumbent, so the search only explores where greedy might
    be beatable.

    Exponential in the worst case; refuses inputs above ``max_pairs``
    (the ablation benchmarks and tests use it on exactly the small
    ``G^p_k`` instances the paper's Table 3 reports).
    """
    if pair_graph.num_pairs > max_pairs:
        raise ValueError(
            f"exact cover limited to {max_pairs} pairs; got "
            f"{pair_graph.num_pairs} (raise max_pairs explicitly if you "
            "accept the exponential blow-up)"
        )
    best: List[Node] = greedy_vertex_cover(pair_graph)

    def branch(uncovered: frozenset, chosen: tuple) -> None:
        nonlocal best
        if not uncovered:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        # Lower bound: a maximal set of disjoint uncovered pairs needs
        # one cover node each (greedy matching).
        matched = set()
        matching = 0
        for u, v in uncovered:
            if u not in matched and v not in matched:
                matched.add(u)
                matched.add(v)
                matching += 1
        if len(chosen) + matching >= len(best):
            return
        u, v = next(iter(uncovered))
        for pick in (u, v):
            remaining = frozenset(
                p for p in uncovered if pick not in p
            )
            branch(remaining, chosen + (pick,))

    branch(frozenset(pair_graph.pairs()), ())
    return best


def greedy_max_coverage(pair_graph: PairGraph, budget: int) -> List[Node]:
    """Greedy budgeted max coverage: at most ``budget`` nodes.

    The prefix-optimality of greedy means this is exactly the first
    ``budget`` picks of :func:`greedy_vertex_cover`; it is the "oracle"
    upper-bound selector used in evaluation plots.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    selected, _ = _greedy_cover(pair_graph, budget=budget)
    return selected
