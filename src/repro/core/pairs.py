"""Ground truth for converging pairs.

A pair of nodes ``(u, v)`` connected in ``G_t1`` converges by
``Δ(u, v) = d_t1(u, v) − d_t2(u, v) >= 0`` (insertion-only evolution can
only shrink distances).  The *top-k converging pairs* are the k connected
pairs with the largest Δ (Problem 1).

Exact computation needs all-pairs shortest paths on both snapshots.  To
keep memory linear we stream one BFS/Dijkstra row per source instead of
materialising two n x n matrices, and make two passes:

1. :func:`delta_histogram` counts pairs per Δ value (one streaming pass);
2. the caller picks a δ threshold (the paper sets k so the top-k set is
   *unique*: k = number of pairs with ``Δ >= δ``), and
   :func:`converging_pairs_at_threshold` collects exactly those pairs.

:func:`top_k_converging_pairs` wraps both passes for arbitrary k, breaking
residual ties deterministically.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.graph.traversal import single_source_distances
from repro.graph.validation import check_snapshot_pair

Node = Hashable
Pair = Tuple[Node, Node]


def canonical_pair(u: Node, v: Node) -> Pair:
    """The canonical (sorted) representation of an unordered node pair.

    Uses natural ordering when comparable, ``repr`` ordering otherwise, so
    sets of pairs from different code paths always agree.
    """
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class ConvergingPair:
    """A scored converging pair.

    Attributes
    ----------
    u, v:
        The endpoints, in canonical order.
    d1:
        Shortest-path distance in ``G_t1``.
    d2:
        Shortest-path distance in ``G_t2``.
    """

    u: Node
    v: Node
    d1: float
    d2: float

    @property
    def delta(self) -> float:
        """The convergence score ``d1 − d2``."""
        return self.d1 - self.d2

    @property
    def pair(self) -> Pair:
        """The canonical ``(u, v)`` tuple."""
        return (self.u, self.v)

    def sort_key(self) -> tuple:
        """Deterministic ranking key: Δ descending, then endpoints ascending."""
        return (-self.delta, repr(self.u), repr(self.v))


def _delta_rows(
    g1: Graph, g2: Graph, validate: bool
) -> Iterator[Tuple[Node, Dict[Node, float], Dict[Node, float]]]:
    """Stream ``(source, d1_row, d2_row)`` for every node of ``G_t1``.

    ``d2_row`` is the ``G_t2`` distance map of the same source.  Sources
    follow ``G_t1`` insertion order; each unordered pair is later counted
    once by the ``rank`` filter in the consumers.
    """
    if validate:
        check_snapshot_pair(g1, g2)
    for u in g1.nodes():
        d1 = single_source_distances(g1, u)
        d2 = single_source_distances(g2, u)
        yield u, d1, d2


def pair_delta(g1: Graph, g2: Graph, u: Node, v: Node) -> Optional[float]:
    """Convergence score of a single pair; ``None`` if not connected at t1."""
    d1 = single_source_distances(g1, u).get(v)
    if d1 is None:
        return None
    d2 = single_source_distances(g2, u).get(v)
    if d2 is None:  # pragma: no cover - impossible for valid snapshot pairs
        raise ValueError(
            f"pair ({u!r}, {v!r}) connected at t1 but not t2; "
            "snapshots are not insertion-only"
        )
    return d1 - d2


#: Recognised values of the ``engine`` argument, in resolution order.
ENGINES = ("auto", "incremental", "csr", "dict")


def _resolve_engine(g1: Graph, g2: Graph, engine: str) -> str:
    """Resolve the requested engine to ``incremental``/``csr``/``dict``.

    ``auto`` picks the incremental delta-BFS engine whenever both
    snapshots are unweighted (it subsumes the plain CSR engine: same
    vectorised scoring, but the t2 traversal is a repair of the t1 one —
    see :mod:`repro.graph.incremental`), and the dict engine otherwise.
    Explicit names are honoured as given.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {'/'.join(ENGINES)}, got {engine!r}"
        )
    if engine != "auto":
        return engine
    if g1.is_weighted() or g2.is_weighted():
        return "dict"
    return "incremental"


def delta_histogram(
    g1: Graph, g2: Graph, validate: bool = True, engine: str = "auto"
) -> Counter:
    """Count connected t1-pairs per Δ value.

    Returns a ``Counter`` mapping Δ (0 included) to the number of
    unordered connected pairs achieving it.  One SSSP pair per node —
    ``O(n (n + m))`` time, ``O(n)`` memory beyond the histogram.

    ``engine`` selects the implementation: ``"dict"`` streams Python
    distance maps (works for weighted graphs), ``"csr"`` runs the
    vectorised unweighted fast path recomputing both traversals,
    ``"incremental"`` repairs each t1 traversal into its t2 counterpart
    through the precomputed snapshot delta, and ``"auto"`` (default)
    picks ``incremental`` whenever both snapshots are unweighted.  All
    engines return identical histograms — a property the test suite
    pins down.
    """
    if validate:
        check_snapshot_pair(g1, g2)
    resolved = _resolve_engine(g1, g2, engine)
    if resolved != "dict":
        from repro.core.fastpairs import csr_delta_histogram

        return csr_delta_histogram(
            g1, g2, incremental=resolved == "incremental"
        )
    rank = {u: i for i, u in enumerate(g1.nodes())}
    hist: Counter = Counter()
    for u, d1, d2 in _delta_rows(g1, g2, validate=False):
        ru = rank[u]
        for v, duv1 in d1.items():
            if v is u or rank[v] < ru:
                continue  # count each unordered pair once
            hist[duv1 - d2[v]] += 1
    return hist


def max_delta(g1: Graph, g2: Graph, validate: bool = True) -> float:
    """The largest convergence score Δmax over all connected t1-pairs.

    Returns 0.0 when ``G_t1`` has no connected pairs at all.
    """
    hist = delta_histogram(g1, g2, validate=validate)
    return max(hist) if hist else 0.0


def k_for_delta_threshold(hist: Counter, delta_min: float) -> int:
    """Number of pairs with ``Δ >= delta_min`` — the paper's k choice.

    Setting k to this count makes the top-k set unique (every pair at or
    above the threshold is in, everything below is out), which is how the
    paper makes the evaluation well-defined despite massive Δ ties.
    """
    return sum(c for d, c in hist.items() if d >= delta_min)


def _require_prunable(resolved: str, what: str) -> None:
    """Reject ``prune=True`` on engines without level-array bounds."""
    if resolved == "dict":
        raise ValueError(
            f"prune=True requires an unweighted engine (csr/incremental); "
            f"the dict engine has no level arrays to bound {what}"
        )


def converging_pairs_at_threshold(
    g1: Graph, g2: Graph, delta_min: float, validate: bool = True,
    engine: str = "auto", prune: bool = False,
) -> List[ConvergingPair]:
    """All connected t1-pairs with ``Δ >= delta_min``, best Δ first.

    ``delta_min`` must be positive: Δ = 0 pairs (no change) are never
    "converging", and collecting them would materialise nearly all pairs.
    ``engine`` follows :func:`delta_histogram`'s convention.

    ``prune=True`` (unweighted engines only) skips or level-cuts t2
    traversals whose Δ bound falls below ``delta_min`` — see
    :mod:`repro.graph.prune`.  The result is identical, pair for pair.
    """
    if delta_min <= 0:
        raise ValueError(f"delta_min must be positive, got {delta_min}")
    if validate:
        check_snapshot_pair(g1, g2)
    out: List[ConvergingPair] = []
    resolved = _resolve_engine(g1, g2, engine)
    if prune:
        _require_prunable(resolved, "against the threshold")
    if resolved != "dict":
        from repro.core.fastpairs import csr_pairs_at_threshold

        rows = csr_pairs_at_threshold(
            g1, g2, delta_min,
            incremental=resolved == "incremental",
            prune=prune,
        )
        for u, v, d1uv, d2uv in rows:
            cu, cv = canonical_pair(u, v)
            out.append(ConvergingPair(cu, cv, d1uv, d2uv))
        out.sort(key=ConvergingPair.sort_key)
        return out
    rank = {u: i for i, u in enumerate(g1.nodes())}
    for u, d1, d2 in _delta_rows(g1, g2, validate=False):
        ru = rank[u]
        for v, duv1 in d1.items():
            if v is u or rank[v] < ru:
                continue
            duv2 = d2[v]
            if duv1 - duv2 >= delta_min:
                cu, cv = canonical_pair(u, v)
                out.append(ConvergingPair(cu, cv, duv1, duv2))
    out.sort(key=ConvergingPair.sort_key)
    return out


def top_k_converging_pairs(
    g1: Graph, g2: Graph, k: int, validate: bool = True,
    engine: str = "auto", prune: bool = False,
) -> List[ConvergingPair]:
    """The exact top-k converging pairs (Problem 1), ground-truth solution.

    Two streaming passes: a Δ histogram to locate the k-th score, then a
    collection pass at that threshold.  Residual ties at the boundary are
    broken deterministically by :meth:`ConvergingPair.sort_key`, so equal
    inputs always yield the same k pairs.  ``engine`` follows
    :func:`delta_histogram`'s convention and applies to both passes.

    ``prune=True`` (unweighted engines only) replaces the two passes
    with one Δ-aware pruned pass: it maintains the running k-th best Δ,
    skips sources whose bound rules them out, and level-cuts the rest
    (:mod:`repro.graph.prune`).  Because the running threshold never
    exceeds the final k-th Δ and ties prune only *strictly* below it,
    the returned list is identical — same pairs, same order — to the
    unpruned engines.

    Returns fewer than k pairs when fewer than k pairs have Δ > 0.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if prune:
        resolved = _resolve_engine(g1, g2, engine)
        _require_prunable(resolved, "against the running k-th Δ")
        if validate:
            check_snapshot_pair(g1, g2)
        from repro.core.fastpairs import csr_top_k_rows

        rows = csr_top_k_rows(
            g1, g2, k, incremental=resolved == "incremental", prune=True
        )
        out: List[ConvergingPair] = []
        for u, v, d1uv, d2uv in rows:
            cu, cv = canonical_pair(u, v)
            out.append(ConvergingPair(cu, cv, d1uv, d2uv))
        out.sort(key=ConvergingPair.sort_key)
        return out[:k]
    hist = delta_histogram(g1, g2, validate=validate, engine=engine)
    # Find the smallest positive threshold with at least k pairs above it.
    threshold = None
    cumulative = 0
    for d in sorted((d for d in hist if d > 0), reverse=True):
        cumulative += hist[d]
        threshold = d
        if cumulative >= k:
            break
    if threshold is None:
        return []
    pairs = converging_pairs_at_threshold(
        g1, g2, threshold, validate=False, engine=engine
    )
    return pairs[:k]


def pairs_as_set(pairs: Sequence[ConvergingPair]) -> set:
    """The canonical-pair set of a pair list (for coverage computations)."""
    return {p.pair for p in pairs}
