"""The pair graph ``G^p_k``.

Given the top-k converging pairs ``P``, the paper defines
``G^p_k = (V_1, P)``: a graph over ``G_t1``'s nodes with one edge per
top-k pair.  A vertex cover of ``G^p_k`` is exactly a candidate set that
recovers the full top-k answer, which is what turns Problem 1 into the
budgeted max-coverage Problem 2.

:class:`PairGraph` is a thin, query-oriented view over a pair list: it is
never mutated after construction and exposes the statistics the paper's
Table 3 reports (number of pairs, number of distinct endpoints) plus the
incidence structure the greedy cover needs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.core.pairs import ConvergingPair, canonical_pair

Node = Hashable
Pair = Tuple[Node, Node]


class PairGraph:
    """Incidence structure over a set of converging pairs.

    Parameters
    ----------
    pairs:
        The top-k converging pairs — either :class:`ConvergingPair`
        objects or raw ``(u, v)`` tuples.  Duplicates (after
        canonicalisation) collapse to a single edge.
    """

    def __init__(self, pairs: Iterable) -> None:
        self._pairs: Set[Pair] = set()
        self._incidence: Dict[Node, Set[Node]] = {}
        for p in pairs:
            if isinstance(p, ConvergingPair):
                u, v = p.u, p.v
            else:
                u, v = p
            cu, cv = canonical_pair(u, v)
            if (cu, cv) in self._pairs:
                continue
            self._pairs.add((cu, cv))
            self._incidence.setdefault(cu, set()).add(cv)
            self._incidence.setdefault(cv, set()).add(cu)

    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Number of distinct pairs (edges of ``G^p_k``)."""
        return len(self._pairs)

    @property
    def num_endpoints(self) -> int:
        """Number of distinct nodes participating in at least one pair."""
        return len(self._incidence)

    def pairs(self) -> Set[Pair]:
        """The canonical pair set (a copy)."""
        return set(self._pairs)

    def endpoints(self) -> Set[Node]:
        """The distinct endpoint set (a copy)."""
        return set(self._incidence)

    def __contains__(self, pair: Pair) -> bool:
        return canonical_pair(*pair) in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def partners(self, u: Node) -> Set[Node]:
        """Nodes paired with ``u`` (empty set for non-endpoints)."""
        return set(self._incidence.get(u, ()))

    def pair_degree(self, u: Node) -> int:
        """Number of pairs ``u`` participates in."""
        return len(self._incidence.get(u, ()))

    def pairs_covered_by(self, nodes: Iterable[Node]) -> Set[Pair]:
        """The pairs with at least one endpoint in ``nodes``."""
        node_set = set(nodes)
        covered: Set[Pair] = set()
        for u in node_set:
            for v in self._incidence.get(u, ()):
                covered.add(canonical_pair(u, v))
        return covered

    def coverage_of(self, nodes: Iterable[Node]) -> float:
        """Fraction of pairs covered by ``nodes`` (1.0 for an empty graph)."""
        if not self._pairs:
            return 1.0
        return len(self.pairs_covered_by(nodes)) / len(self._pairs)

    def is_vertex_cover(self, nodes: Iterable[Node]) -> bool:
        """True iff every pair has an endpoint in ``nodes``."""
        node_set = set(nodes)
        return all(u in node_set or v in node_set for u, v in self._pairs)

    def degree_ranked_endpoints(self) -> List[Node]:
        """Endpoints ranked by pair degree (descending, deterministic)."""
        return sorted(
            self._incidence,
            key=lambda u: (-len(self._incidence[u]), repr(u)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PairGraph(pairs={self.num_pairs}, endpoints={self.num_endpoints})"
        )
