"""Deterministic fault injection for tests and chaos runs.

Retry, skip, and resume logic is only trustworthy if it is exercised
against real failures — but failures in CI must be *reproducible*.
:class:`FaultPlan` describes a failure schedule as pure data (fail the
Nth call, fail at a seeded rate, spike latency), and
:class:`FaultInjector` applies it to any callable: a candidate selector,
an SSSP routine, an IO read.  Two injectors built from the same plan
make identical decisions call for call.

Typical test usage::

    plan = FaultPlan(fail_nth=(3,))
    injector = FaultInjector(plan)
    flaky_selector = injector.wrap(make_selector, unit="selector")

Chaos runs use ``fail_rate`` with a seed; the injected exception type is
:class:`InjectedFault` (a ``RuntimeError``) so production code cannot
accidentally special-case it.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import BinaryIO, Callable, Optional, Tuple, TypeVar

from repro.resilience.events import log_event

T = TypeVar("T")


class InjectedFault(RuntimeError):
    """The failure raised by a fault injector (never by real code)."""


class DiskFault(InjectedFault):
    """Base class for injected storage failures.

    Durability code (the WAL, checkpoint stores) treats these exactly
    like the real :class:`OSError` they model — the subclass only tells
    the *test* which schedule entry fired.
    """


class DiskFullFault(DiskFault):
    """An injected ``ENOSPC``: the write fails before any byte lands."""


class TornWriteFault(DiskFault):
    """An injected torn write: a strict prefix of the payload landed.

    Models a crash (or sector-boundary power cut) mid-``write`` — the
    bytes before the tear are durable, the rest never happened.
    """


class FsyncFault(DiskFault):
    """An injected ``fsync`` failure: the data may or may not be durable.

    Models the "fsyncgate" class of failures — after a failed fsync the
    page cache state is unknowable, so correct recovery code must treat
    the whole record as unwritten.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule.

    Attributes
    ----------
    fail_nth:
        1-based call indices that fail (counted across the injector's
        lifetime, not per wrapped callable).
    fail_rate:
        Probability in ``[0, 1]`` that any other call fails, drawn from
        ``random.Random(seed)`` — one draw per call, so the decision
        sequence is deterministic.
    latency_s:
        Seconds of latency added to calls listed in ``latency_nth`` (or
        to every call when ``latency_nth`` is empty and ``latency_s`` is
        positive).  Injected through a ``sleep`` hook so tests measure
        rather than wait.
    latency_nth:
        1-based call indices receiving the latency spike.
    seed:
        Seed for the fail-rate draws.
    """

    fail_nth: Tuple[int, ...] = ()
    fail_rate: float = 0.0
    latency_s: float = 0.0
    latency_nth: Tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_rate <= 1.0:
            raise ValueError(f"fail_rate must be in [0, 1], got {self.fail_rate}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if any(n < 1 for n in self.fail_nth) or any(n < 1 for n in self.latency_nth):
            raise ValueError("call indices are 1-based and must be >= 1")


class FaultInjector:
    """Applies a :class:`FaultPlan` to wrapped callables.

    One injector holds one call counter and one RNG, shared across
    everything it wraps — matching how a real fault (a flaky disk, a
    throttled API) does not care which code path hit it.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.plan = plan
        self.calls = 0
        self.faults = 0
        self._rng = random.Random(plan.seed)
        self._sleep = time.sleep if sleep is None else sleep

    def _should_fail(self, call_index: int) -> bool:
        # The rate draw happens for every call (even fail_nth ones) so
        # the decision sequence depends only on the call index.
        rate_hit = self._rng.random() < self.plan.fail_rate
        return call_index in self.plan.fail_nth or rate_hit

    def check(self, unit: str = "call") -> None:
        """Count one call and raise if the plan says this one fails."""
        self.calls += 1
        index = self.calls
        spike = self.plan.latency_s > 0 and (
            not self.plan.latency_nth or index in self.plan.latency_nth
        )
        if spike:
            log_event("fault.latency", unit=unit, call=index,
                      delay=self.plan.latency_s)
            self._sleep(self.plan.latency_s)
        if self._should_fail(index):
            self.faults += 1
            log_event("fault.injected", unit=unit, call=index)
            raise InjectedFault(f"injected fault on call {index} of {unit!r}")

    def wrap(self, fn: Callable[..., T], unit: str = "call") -> Callable[..., T]:
        """A callable that runs the plan's check, then delegates to ``fn``."""

        def wrapped(*args: object, **kwargs: object) -> T:
            self.check(unit)
            return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped


@dataclass(frozen=True)
class DiskFaultPlan:
    """A reproducible schedule of storage failures.

    All indices are 1-based and counted per operation kind across the
    injector's lifetime (writes and fsyncs have independent counters),
    so two injectors built from the same plan fail the same operations.

    Attributes
    ----------
    enospc_nth:
        Write indices that fail with :class:`DiskFullFault` before any
        byte reaches the file (a full disk rejects the append whole).
    torn_nth:
        Write indices that land only ``torn_fraction`` of the payload,
        then raise :class:`TornWriteFault` — the torn-write/power-cut
        case recovery must tolerate.
    fsync_nth:
        Fsync indices that raise :class:`FsyncFault`; the preceding
        write's durability is then unknown and callers must treat the
        record as never written.
    torn_fraction:
        Fraction of the payload that survives a torn write (at least
        one byte is dropped so the tear is real).
    """

    enospc_nth: Tuple[int, ...] = ()
    torn_nth: Tuple[int, ...] = ()
    fsync_nth: Tuple[int, ...] = ()
    torn_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError(
                f"torn_fraction must be in [0, 1), got {self.torn_fraction}"
            )
        indices = self.enospc_nth + self.torn_nth + self.fsync_nth
        if any(n < 1 for n in indices):
            raise ValueError("operation indices are 1-based and must be >= 1")


class SocketCutFault(InjectedFault):
    """An injected half-open socket: the sender stopped mid-payload.

    Models a peer that vanished (NAT timeout, pulled cable, killed VM)
    after a prefix of the bytes left: the write side is gone but the
    connection was never properly closed.  Servers must survive the
    resulting truncated request without wedging the accept loop.
    """


@dataclass(frozen=True)
class SocketFaultPlan:
    """A reproducible schedule of client-side socket misbehaviour.

    Pure data, applied by :class:`SocketFaultInjector` to a client's
    send path; two injectors built from the same plan emit identical
    byte sequences with identical stalls.

    Attributes
    ----------
    chunk_size:
        Bytes per ``send`` call; ``0`` sends each payload whole.  Small
        chunks model a slow client trickling a request line.
    stall_s:
        Injected pause between chunks, routed through the injector's
        ``sleep`` hook so tests count stalls instead of waiting them.
    cut_after_bytes:
        Total bytes (across the injector's lifetime) after which the
        connection goes half-open: the prefix is delivered, the write
        side is shut down, and :class:`SocketCutFault` is raised.
        ``None`` disables the cut.
    """

    chunk_size: int = 0
    stall_s: float = 0.0
    cut_after_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.chunk_size < 0:
            raise ValueError(
                f"chunk_size must be >= 0, got {self.chunk_size}"
            )
        if self.stall_s < 0:
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s}")
        if self.cut_after_bytes is not None and self.cut_after_bytes < 0:
            raise ValueError(
                f"cut_after_bytes must be >= 0, got {self.cut_after_bytes}"
            )


class SocketFaultInjector:
    """Applies a :class:`SocketFaultPlan` to a client's send path.

    Transport-agnostic: the caller supplies the raw ``send_bytes``
    callable (and optionally a ``shutdown`` for the half-open cut), so
    the same injector drives real sockets in the service fault suite
    and in-memory transports in unit tests.  One injector counts bytes
    across every send it mediates, like a single failing link would.
    """

    def __init__(
        self,
        plan: SocketFaultPlan,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.plan = plan
        self.sent_bytes = 0
        self.chunks = 0
        self.stalls = 0
        self.cut = False
        self._sleep = time.sleep if sleep is None else sleep

    def _chunked(self, data: bytes) -> Tuple[bytes, ...]:
        size = self.plan.chunk_size
        if size <= 0 or size >= len(data):
            return (data,)
        return tuple(
            data[i:i + size] for i in range(0, len(data), size)
        )

    def send(
        self,
        send_bytes: Callable[[bytes], None],
        data: bytes,
        unit: str = "send",
        shutdown: Optional[Callable[[], None]] = None,
    ) -> int:
        """Send ``data`` through the plan; returns bytes delivered.

        Raises :class:`SocketCutFault` when the cumulative byte budget
        runs out mid-payload — after delivering the surviving prefix
        and half-closing via ``shutdown`` (when provided).
        """
        if self.cut:
            raise SocketCutFault(
                f"connection already half-open in {unit!r}"
            )
        delivered = 0
        for index, chunk in enumerate(self._chunked(data)):
            if index > 0 and self.plan.stall_s > 0:
                self.stalls += 1
                log_event(
                    "fault.socket", fault="stall", unit=unit,
                    delay=self.plan.stall_s,
                )
                self._sleep(self.plan.stall_s)
            budget = self.plan.cut_after_bytes
            if budget is not None and self.sent_bytes + len(chunk) > budget:
                keep = max(0, budget - self.sent_bytes)
                if keep:
                    send_bytes(chunk[:keep])
                    self.sent_bytes += keep
                    delivered += keep
                self.cut = True
                if shutdown is not None:
                    shutdown()
                log_event(
                    "fault.socket", fault="cut", unit=unit,
                    delivered=self.sent_bytes,
                )
                raise SocketCutFault(
                    f"injected half-open cut in {unit!r} after "
                    f"{self.sent_bytes} byte(s)"
                )
            send_bytes(chunk)
            self.chunks += 1
            self.sent_bytes += len(chunk)
            delivered += len(chunk)
        return delivered


class DiskFaultInjector:
    """Applies a :class:`DiskFaultPlan` to file writes and fsyncs.

    Durability layers (the WAL, the checkpoint store) route their raw
    ``write``/``fsync`` calls through one of these when a test supplies
    it; in production the injector is ``None`` and the same code path
    calls the real OS primitives.  One injector counts operations across
    every file it touches, like a single failing disk would.
    """

    def __init__(self, plan: DiskFaultPlan) -> None:
        self.plan = plan
        self.writes = 0
        self.fsyncs = 0
        self.faults = 0

    def write(self, fh: BinaryIO, blob: bytes, unit: str = "write") -> None:
        """Write ``blob`` to ``fh``, applying the plan's write schedule."""
        self.writes += 1
        index = self.writes
        if index in self.plan.enospc_nth:
            self.faults += 1
            log_event("fault.disk", fault="enospc", unit=unit, op=index)
            raise DiskFullFault(
                f"injected ENOSPC on write {index} of {unit!r}"
            )
        if index in self.plan.torn_nth:
            cut = min(len(blob) - 1, int(len(blob) * self.plan.torn_fraction))
            cut = max(cut, 0)
            fh.write(blob[:cut])
            fh.flush()
            self.faults += 1
            log_event(
                "fault.disk", fault="torn", unit=unit, op=index,
                written=cut, dropped=len(blob) - cut,
            )
            raise TornWriteFault(
                f"injected torn write on write {index} of {unit!r} "
                f"({cut}/{len(blob)} bytes landed)"
            )
        fh.write(blob)

    def fsync(self, fh: BinaryIO, unit: str = "fsync") -> None:
        """Fsync ``fh``, applying the plan's fsync schedule."""
        self.fsyncs += 1
        index = self.fsyncs
        if index in self.plan.fsync_nth:
            self.faults += 1
            log_event("fault.disk", fault="fsync", unit=unit, op=index)
            raise FsyncFault(
                f"injected fsync failure on fsync {index} of {unit!r}"
            )
        os.fsync(fh.fileno())
