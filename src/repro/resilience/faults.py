"""Deterministic fault injection for tests and chaos runs.

Retry, skip, and resume logic is only trustworthy if it is exercised
against real failures — but failures in CI must be *reproducible*.
:class:`FaultPlan` describes a failure schedule as pure data (fail the
Nth call, fail at a seeded rate, spike latency), and
:class:`FaultInjector` applies it to any callable: a candidate selector,
an SSSP routine, an IO read.  Two injectors built from the same plan
make identical decisions call for call.

Typical test usage::

    plan = FaultPlan(fail_nth=(3,))
    injector = FaultInjector(plan)
    flaky_selector = injector.wrap(make_selector, unit="selector")

Chaos runs use ``fail_rate`` with a seed; the injected exception type is
:class:`InjectedFault` (a ``RuntimeError``) so production code cannot
accidentally special-case it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from repro.resilience.events import log_event

T = TypeVar("T")


class InjectedFault(RuntimeError):
    """The failure raised by a fault injector (never by real code)."""


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule.

    Attributes
    ----------
    fail_nth:
        1-based call indices that fail (counted across the injector's
        lifetime, not per wrapped callable).
    fail_rate:
        Probability in ``[0, 1]`` that any other call fails, drawn from
        ``random.Random(seed)`` — one draw per call, so the decision
        sequence is deterministic.
    latency_s:
        Seconds of latency added to calls listed in ``latency_nth`` (or
        to every call when ``latency_nth`` is empty and ``latency_s`` is
        positive).  Injected through a ``sleep`` hook so tests measure
        rather than wait.
    latency_nth:
        1-based call indices receiving the latency spike.
    seed:
        Seed for the fail-rate draws.
    """

    fail_nth: Tuple[int, ...] = ()
    fail_rate: float = 0.0
    latency_s: float = 0.0
    latency_nth: Tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_rate <= 1.0:
            raise ValueError(f"fail_rate must be in [0, 1], got {self.fail_rate}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if any(n < 1 for n in self.fail_nth) or any(n < 1 for n in self.latency_nth):
            raise ValueError("call indices are 1-based and must be >= 1")


class FaultInjector:
    """Applies a :class:`FaultPlan` to wrapped callables.

    One injector holds one call counter and one RNG, shared across
    everything it wraps — matching how a real fault (a flaky disk, a
    throttled API) does not care which code path hit it.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.plan = plan
        self.calls = 0
        self.faults = 0
        self._rng = random.Random(plan.seed)
        self._sleep = time.sleep if sleep is None else sleep

    def _should_fail(self, call_index: int) -> bool:
        # The rate draw happens for every call (even fail_nth ones) so
        # the decision sequence depends only on the call index.
        rate_hit = self._rng.random() < self.plan.fail_rate
        return call_index in self.plan.fail_nth or rate_hit

    def check(self, unit: str = "call") -> None:
        """Count one call and raise if the plan says this one fails."""
        self.calls += 1
        index = self.calls
        spike = self.plan.latency_s > 0 and (
            not self.plan.latency_nth or index in self.plan.latency_nth
        )
        if spike:
            log_event("fault.latency", unit=unit, call=index,
                      delay=self.plan.latency_s)
            self._sleep(self.plan.latency_s)
        if self._should_fail(index):
            self.faults += 1
            log_event("fault.injected", unit=unit, call=index)
            raise InjectedFault(f"injected fault on call {index} of {unit!r}")

    def wrap(self, fn: Callable[..., T], unit: str = "call") -> Callable[..., T]:
        """A callable that runs the plan's check, then delegates to ``fn``."""

        def wrapped(*args: object, **kwargs: object) -> T:
            self.check(unit)
            return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped
