"""Atomic, schema-versioned JSON checkpoints for resumable runs.

The cost model's whole point is that each SSSP-budgeted run is the
expensive unit — a crash halfway through a sweep must not force paying
for completed units twice.  :class:`CheckpointStore` persists one small
JSON record per completed unit, keyed by whatever identifies the unit
(the runner uses ``(experiment, dataset, scale, δ, selector, ...)``),
and survives the two classic failure modes:

* **torn writes** — records are written to a temp file in the same
  directory, fsynced, then :func:`os.replace`'d into place, and the
  parent directory entry is fsynced after the rename (without it, a
  crash right after ``os.replace`` can lose the whole record on
  filesystems that journal data but not directory updates), so a record
  either exists completely or not at all;
* **corrupted records** — every record embeds a SHA-256 checksum of its
  canonical payload and a schema version; a record that fails either
  check is treated as missing (and reported via
  :func:`~repro.resilience.events.log_event`), so a damaged store
  degrades to recomputation, never to wrong results.

Values must be JSON-serialisable.  Keys may be arbitrarily nested
tuples/lists of scalars; they are canonicalised (tuples → lists) before
hashing, so ``("a", 1)`` and ``["a", 1]`` name the same record.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any, Iterator, List, Union

from repro.resilience.events import log_event

PathLike = Union[str, Path]

SCHEMA_VERSION = 1

_MISSING = object()


def _canonical_key(key: Any) -> Any:
    """Tuples become lists so a key equals its JSON round-trip."""
    if isinstance(key, (list, tuple)):
        return [_canonical_key(part) for part in key]
    return key


def _checksum(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fsync_directory(directory: Path) -> None:
    """Fsync a directory entry so a just-renamed file survives a crash.

    ``os.replace`` makes the *file contents* atomic, but the rename
    itself lives in the directory: until the directory inode is synced,
    a power cut can roll the rename back.  Platforms whose directories
    cannot be opened for fsync (Windows) skip silently — the rename is
    still atomic there, only the durability window differs.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """A directory of atomic single-record JSON checkpoints.

    Parameters
    ----------
    directory:
        Created (with parents) if absent.  One file per key; concurrent
        *readers* are always safe, and concurrent writers of *different*
        keys are safe because each record is replaced atomically.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: Any) -> Path:
        canonical = _canonical_key(key)
        digest = _checksum(canonical)[:20]
        # A short human-readable prefix makes `ls` on the store useful.
        flat = "-".join(
            str(part) for part in (key if isinstance(key, (list, tuple)) else [key])
        )
        prefix = re.sub(r"[^A-Za-z0-9._-]+", "_", flat)[:60].strip("_") or "key"
        return self.directory / f"{prefix}.{digest}.json"

    def put(self, key: Any, value: Any) -> Path:
        """Atomically persist ``value`` under ``key``; returns the path."""
        canonical = _canonical_key(key)
        record = {
            "schema": SCHEMA_VERSION,
            "key": canonical,
            "checksum": _checksum(value),
            "value": value,
        }
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(self.directory)
        return path

    def get(self, key: Any, default: Any = None) -> Any:
        """The stored value, or ``default`` if absent/corrupt/foreign.

        A record whose schema version, key, or checksum does not match
        is reported (``checkpoint.corrupt``) and treated as missing.
        """
        path = self._path(key)
        if not path.exists():
            return default
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            log_event(
                "checkpoint.corrupt",
                path=path.name,
                reason=f"unreadable:{type(exc).__name__}",
            )
            return default
        if not isinstance(record, dict) or record.get("schema") != SCHEMA_VERSION:
            log_event("checkpoint.corrupt", path=path.name, reason="schema")
            return default
        if record.get("key") != _canonical_key(key):
            log_event("checkpoint.corrupt", path=path.name, reason="key")
            return default
        value = record.get("value")
        if record.get("checksum") != _checksum(value):
            log_event("checkpoint.corrupt", path=path.name, reason="checksum")
            return default
        return value

    def contains(self, key: Any) -> bool:
        """Whether a *valid* record exists for ``key``."""
        return self.get(key, default=_MISSING) is not _MISSING

    __contains__ = contains

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[Any]:
        """The keys of every valid record in the store."""
        for path in sorted(self.directory.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (ValueError, OSError):
                continue
            if (
                isinstance(record, dict)
                and record.get("schema") == SCHEMA_VERSION
                and record.get("checksum") == _checksum(record.get("value"))
            ):
                yield record["key"]

    def delete(self, key: Any) -> bool:
        """Remove ``key``'s record if present; returns whether it existed."""
        path = self._path(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every record; returns how many were deleted."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.directory)!r})"


def restore_list(value: Any) -> List[Any]:
    """JSON round-trips tuples as lists; normalise back to a list of tuples.

    Helper for callers whose checkpointed values are lists of pair-like
    records (the monitor's ``pairs``): every inner list becomes a tuple.
    """
    return [tuple(item) if isinstance(item, list) else item for item in value]
