"""Resilient execution layer: retries, deadlines, checkpoints, faults.

Long sweeps and monitoring runs are sequences of SSSP-budgeted units —
the paper's expensive resource.  This package makes those sequences
survive the real world:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (exponential
  backoff, seeded jitter, deterministic) and per-unit :class:`Deadline`,
  with typed :class:`RetriesExhausted` / :class:`BudgetRunTimeout`;
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointStore`, an
  atomic (write-temp-fsync-rename), checksummed, schema-versioned JSON
  store so crashed runs resume instead of restarting;
* :mod:`repro.resilience.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`, deterministic failure schedules for tests and
  chaos runs;
* :mod:`repro.resilience.degrade` — :func:`run_guarded`, the one place
  a unit's failure is retried, deadline-bounded, and (optionally)
  absorbed into a recorded error;
* :mod:`repro.resilience.events` — :func:`log_event`, the structured
  logging chokepoint every retry/skip/resume/fault event goes through.

See ``docs/resilience.md`` for the checkpoint format and CLI flags.
"""

from repro.resilience.checkpoint import SCHEMA_VERSION, CheckpointStore, restore_list
from repro.resilience.degrade import (
    ON_ERROR_MODES,
    check_on_error,
    describe_error,
    run_guarded,
)
from repro.resilience.events import capture_events, log_event
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    SocketCutFault,
    SocketFaultInjector,
    SocketFaultPlan,
)
from repro.resilience.policy import (
    BudgetRunTimeout,
    Deadline,
    ResilienceError,
    RetriesExhausted,
    RetryPolicy,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointStore",
    "restore_list",
    "ON_ERROR_MODES",
    "check_on_error",
    "describe_error",
    "run_guarded",
    "capture_events",
    "log_event",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "SocketCutFault",
    "SocketFaultInjector",
    "SocketFaultPlan",
    "BudgetRunTimeout",
    "Deadline",
    "ResilienceError",
    "RetriesExhausted",
    "RetryPolicy",
]
