"""Graceful degradation: run a unit, absorb its failure, keep going.

:func:`run_guarded` is the one place where the execution layer decides
what a failure *means*: retried first (per the :class:`RetryPolicy`),
bounded by a per-unit :class:`Deadline`, and then — under
``on_error="skip"`` — converted into a recorded error string instead of
an exception, so a sweep renders the failed cell as ``—`` and a monitor
records the failed window and moves on.  ``on_error="fail"`` preserves
fail-fast semantics for callers who want the traceback.

``KeyboardInterrupt``/``SystemExit`` are never absorbed: a user killing
a run is not a fault to degrade around (it is what checkpoints are for).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TypeVar

from repro.resilience.events import log_event
from repro.resilience.policy import Deadline, RetryPolicy

T = TypeVar("T")

ON_ERROR_MODES = ("fail", "skip")


def check_on_error(on_error: str) -> str:
    """Validate an ``on_error`` mode string (returns it for chaining)."""
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    return on_error


def describe_error(exc: BaseException) -> str:
    """The one-line ``Type: message`` form errors are recorded in."""
    message = str(exc)
    name = type(exc).__name__
    return f"{name}: {message}" if message else name


def run_guarded(
    fn: Callable[[], T],
    *,
    unit: str,
    retry_policy: Optional[RetryPolicy] = None,
    deadline: Optional[Deadline] = None,
    on_error: str = "fail",
    sleep: Optional[Callable[[float], None]] = None,
) -> Tuple[Optional[T], Optional[str]]:
    """Run one unit of work under the full resilience stack.

    Returns ``(value, None)`` on success.  On failure after retries:
    with ``on_error="skip"`` returns ``(None, "Type: message")`` and
    logs a ``skip`` event; with ``on_error="fail"`` re-raises.
    """
    check_on_error(on_error)
    try:
        if retry_policy is not None and retry_policy.max_retries > 0:
            value = retry_policy.call(
                fn, unit=unit, deadline=deadline, sleep=sleep
            )
        else:
            if deadline is not None:
                deadline.check(unit)
            value = fn()
        return value, None
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        if on_error == "skip":
            error = describe_error(exc)
            log_event("skip", unit=unit, error=type(exc).__name__)
            return None, error
        raise
