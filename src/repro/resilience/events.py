"""Structured logging for resilience events.

Every retry, skip, timeout, checkpoint hit, and fault injection in the
execution layer is reported through :func:`log_event`, so a long run's
recovery behaviour is auditable from one place — grep the
``repro.resilience`` logger (or subscribe in-process) instead of
scattering ad-hoc prints through the runner and monitor.

Events are ``(kind, fields)`` pairs; the log line renders the fields as
sorted ``key=value`` tokens, so lines are stable and machine-greppable::

    retry attempt=1 delay=0.1 error=InjectedFault unit=cell:facebook/MMSD

Tests (and dashboards) can observe events without touching the logging
module via :func:`capture_events`.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Tuple

logger = logging.getLogger("repro.resilience")

Event = Tuple[str, Dict[str, object]]

_subscribers: List[Callable[[str, Dict[str, object]], None]] = []


def log_event(kind: str, **fields: object) -> None:
    """Report one resilience event (a retry, skip, resume, fault, ...).

    ``kind`` is a dotted lowercase label (``"retry"``,
    ``"checkpoint.hit"``, ``"window.failed"``); ``fields`` carry the
    event's context.  The event is written to the ``repro.resilience``
    logger and fanned out to any in-process subscribers.
    """
    rendered = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
    logger.info("%s %s", kind, rendered)
    for subscriber in list(_subscribers):
        subscriber(kind, dict(fields))


@contextmanager
def capture_events() -> Iterator[List[Event]]:
    """Collect every :func:`log_event` call made inside the block.

    >>> with capture_events() as events:
    ...     log_event("retry", unit="demo", attempt=1)
    >>> events[0][0]
    'retry'
    """
    captured: List[Event] = []

    def subscriber(kind: str, fields: Dict[str, object]) -> None:
        captured.append((kind, fields))

    _subscribers.append(subscriber)
    try:
        yield captured
    finally:
        _subscribers.remove(subscriber)
