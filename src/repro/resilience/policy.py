"""Retry and deadline policies for long-running execution units.

The paper's cost model makes one budgeted top-k run the unit of work; a
production sweep performs hundreds of them, and a single transient
failure must not discard the completed ones.  :class:`RetryPolicy`
re-runs a failed unit with exponential backoff plus seeded jitter — the
whole delay sequence is a pure function of the policy, so tests assert
it without sleeping — and :class:`Deadline` bounds how long one unit may
keep trying.

Both raise *typed* errors (:class:`RetriesExhausted`,
:class:`BudgetRunTimeout`) so callers can distinguish "the unit is
genuinely broken" from "the unit ran out of time" and degrade
accordingly (see :mod:`repro.resilience.degrade`).
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.resilience.events import log_event

T = TypeVar("T")


class ResilienceError(RuntimeError):
    """Base class for the execution layer's typed failures."""


class BudgetRunTimeout(ResilienceError):
    """A unit of work exceeded its deadline.

    Attributes
    ----------
    unit:
        Label of the unit that timed out (e.g. ``"cell:facebook/MMSD"``).
    elapsed / limit:
        Seconds spent vs. the deadline's allowance.
    """

    def __init__(self, unit: str, elapsed: float, limit: float) -> None:
        super().__init__(
            f"unit {unit!r} exceeded its {limit:g}s deadline "
            f"(elapsed {elapsed:.3f}s)"
        )
        self.unit = unit
        self.elapsed = elapsed
        self.limit = limit


class RetriesExhausted(ResilienceError):
    """A unit of work failed on every allowed attempt.

    The final underlying exception is chained as ``__cause__`` and kept
    on :attr:`last_error`.
    """

    def __init__(self, unit: str, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"unit {unit!r} failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.unit = unit
        self.attempts = attempts
        self.last_error = last_error


class Deadline:
    """A per-unit time allowance measured on an injectable clock.

    The deadline starts when the object is constructed.  Deadlines are
    checked *cooperatively* — at unit boundaries and between retry
    attempts — because one SSSP-budgeted run is atomic; the guarantee is
    "no new attempt starts past the deadline", not pre-emption.

    Parameters
    ----------
    seconds:
        The allowance; ``None`` means unlimited (every check passes).
    clock:
        Monotonic time source; tests pass a fake to avoid wall-clock
        dependence.
    """

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative); ``None`` when unlimited."""
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        """Whether the allowance has run out."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, unit: str = "run") -> None:
        """Raise :class:`BudgetRunTimeout` if the deadline has passed."""
        if self.expired():
            assert self.seconds is not None
            log_event(
                "deadline.expired",
                unit=unit,
                elapsed=round(self.elapsed(), 6),
                limit=self.seconds,
            )
            raise BudgetRunTimeout(unit, self.elapsed(), self.seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter.

    The delay before retry ``i`` (1-based) is::

        min(max_delay, base_delay * multiplier**(i-1)) * (1 + U_i)

    where ``U_i ~ Uniform(0, jitter)`` comes from ``random.Random(seed)``
    — the whole sequence is deterministic given the policy, so tests pin
    it exactly without sleeping (pass a fake ``sleep`` to :meth:`call`).

    ``max_retries`` counts *retries*, not attempts: a unit runs at most
    ``max_retries + 1`` times.  ``base_delay=0`` (the experiment
    runner's default) retries immediately — still deterministic, never
    sleeping.

    ``max_delay`` is a hard ceiling on the exponential term: once the
    schedule reaches it every later delay stays exactly there (times
    jitter), for any attempt count.  The ceiling is applied to the
    running product rather than via ``multiplier**(i-1)``, because the
    naive power overflows ``float`` around attempt 1024 and a
    long-lived supervisor legitimately reaches such counts.
    """

    max_retries: int = 0
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def delays_unbounded(self) -> Iterator[float]:
        """The backoff schedule as an endless stream (``max_retries``
        ignored) — for callers with their own stop condition, like a
        supervisor's lifetime restart budget.

        Identical to ``min(max_delay, base_delay * multiplier**(i-1))``
        while that power is representable, and pinned at ``max_delay``
        beyond it — the running product is clamped each step, so no
        attempt count can overflow.
        """
        rng = random.Random(self.seed)
        base = self.base_delay
        while True:
            yield min(self.max_delay, base) * (1.0 + rng.uniform(0.0, self.jitter))
            base = min(self.max_delay, base * self.multiplier)

    def delays(self) -> Iterator[float]:
        """The deterministic backoff sequence, one delay per retry."""
        return itertools.islice(self.delays_unbounded(), self.max_retries)

    def call(
        self,
        fn: Callable[[], T],
        *,
        unit: str = "call",
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        deadline: Optional[Deadline] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> T:
        """Run ``fn`` under this policy.

        Retries on exceptions matching ``retry_on`` (deadline timeouts
        are never retried — they are the stop condition).  Raises
        :class:`RetriesExhausted` once the attempts are spent, chaining
        the last underlying error, or :class:`BudgetRunTimeout` when the
        deadline expires between attempts.
        """
        do_sleep = time.sleep if sleep is None else sleep
        delays = self.delays()
        attempt = 0
        while True:
            attempt += 1
            if deadline is not None:
                deadline.check(unit)
            try:
                return fn()
            except BudgetRunTimeout:
                raise
            except retry_on as exc:
                if attempt > self.max_retries:
                    log_event(
                        "retries.exhausted",
                        unit=unit,
                        attempts=attempt,
                        error=type(exc).__name__,
                    )
                    raise RetriesExhausted(unit, attempt, exc) from exc
                delay = next(delays)
                log_event(
                    "retry",
                    unit=unit,
                    attempt=attempt,
                    delay=round(delay, 6),
                    error=type(exc).__name__,
                )
                if delay > 0:
                    do_sleep(delay)
