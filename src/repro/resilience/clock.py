"""The one sanctioned monotonic-clock chokepoint outside tests.

The determinism contract (reprolint R002, docs/static-analysis.md) bans
clock reads everywhere results are computed: no wall-clock value may
influence an output, an event payload, or a checkpoint.  But the runtime
layer legitimately needs *elapsed* time — heartbeat staleness, soft time
budgets, supervisor backoff — where the clock is the domain object, not
an entropy leak.

Those consumers import :func:`monotonic` from here instead of touching
:mod:`time` directly, and always accept an injectable ``clock`` so tests
substitute a fake and never wall-clock-wait.  Keeping the real read in
one allowlisted module means R002 still catches every accidental clock
dependency elsewhere.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """Seconds from the process's monotonic clock (never wall time)."""
    return time.monotonic()
