"""Atomic, checksummed capture of events the sanitizer diverted.

A :class:`QuarantineStore` is a directory holding one sanitization run's
rejected material plus enough provenance to audit and *replay* it:

* ``records.jsonl`` — one JSON object per quarantined event (or
  unparseable line) with rule, reason, source line number, arrival
  index, and the raw line text;
* ``manifest.json`` — schema version, the source file's path and
  SHA-256, the full policy configuration and buffer size of the run,
  and the SHA-256 of the records blob.

Both files are written with the same torn-write discipline as
:class:`~repro.resilience.checkpoint.CheckpointStore` (temp file in the
same directory, fsync, ``os.replace``), and :meth:`QuarantineStore.load`
verifies the schema and records checksum — a damaged store raises
:class:`~repro.ingest.rules.QuarantineError` instead of replaying
corrupt provenance.

Replay (:func:`~repro.ingest.replay.replay_quarantine`) re-drives
ingestion from the recorded source under a changed policy; the manifest's
source checksum is what makes that exact — replay refuses to run if the
source bytes changed since the quarantine was written.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.ingest.rules import QuarantineError

PathLike = Union[str, Path]

SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"


def _jsonable(value: Any) -> Any:
    """JSON-native scalars pass through; exotic node ids become reprs."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def sha256_bytes(blob: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(blob).hexdigest()


def sha256_file(path: PathLike) -> str:
    """Hex SHA-256 of a file's bytes (streamed)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class QuarantineRecord:
    """One diverted event (or unparseable line) with full provenance."""

    rule: str
    reason: str
    seq: int
    lineno: int
    raw: str
    time: Optional[float] = None
    u: Any = None
    v: Any = None
    weight: Optional[float] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON-stable form (one ``records.jsonl`` row)."""
        return {
            "rule": self.rule,
            "reason": self.reason,
            "seq": self.seq,
            "lineno": self.lineno,
            "raw": self.raw,
            "time": self.time,
            "u": _jsonable(self.u),
            "v": _jsonable(self.v),
            "weight": self.weight,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "QuarantineRecord":
        """Rebuild a record from a ``records.jsonl`` row."""
        return cls(
            rule=payload["rule"],
            reason=payload["reason"],
            seq=payload["seq"],
            lineno=payload["lineno"],
            raw=payload["raw"],
            time=payload.get("time"),
            u=payload.get("u"),
            v=payload.get("v"),
            weight=payload.get("weight"),
        )


@dataclass(frozen=True)
class QuarantineRun:
    """A loaded (and checksum-verified) quarantine directory."""

    source: str
    source_sha256: str
    policies: Dict[str, str]
    buffer_size: int
    records: List[QuarantineRecord]


class QuarantineStore:
    """One sanitization run's quarantine directory.

    Parameters
    ----------
    directory:
        Created (with parents) if absent.  One run per directory: a
        :meth:`save` replaces any previous run's files atomically.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        """Path of the run manifest."""
        return self.directory / MANIFEST_NAME

    @property
    def records_path(self) -> Path:
        """Path of the records file."""
        return self.directory / RECORDS_NAME

    def exists(self) -> bool:
        """Whether a saved run is present."""
        return self.manifest_path.exists()

    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, blob: bytes) -> None:
        from repro.resilience.checkpoint import fsync_directory

        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(self.directory)

    def save(
        self,
        records: List[QuarantineRecord],
        *,
        source: str,
        source_sha256: str,
        policies: Dict[str, str],
        buffer_size: int,
    ) -> None:
        """Atomically persist one run (records first, manifest last).

        The manifest embeds the records blob's checksum, so a crash
        between the two writes leaves a manifest that still describes a
        complete, matching records file (the previous run's, if any,
        until the new manifest lands).
        """
        rows = [
            json.dumps(rec.to_payload(), sort_keys=True,
                       separators=(",", ":"))
            for rec in records
        ]
        blob = ("\n".join(rows) + "\n").encode("utf-8") if rows else b""
        manifest = {
            "schema": SCHEMA_VERSION,
            "source": source,
            "source_sha256": source_sha256,
            "policies": dict(sorted(policies.items())),
            "buffer_size": buffer_size,
            "record_count": len(records),
            "records_sha256": sha256_bytes(blob),
        }
        self._write_atomic(self.records_path, blob)
        self._write_atomic(
            self.manifest_path,
            json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8"),
        )

    def load(self) -> QuarantineRun:
        """The saved run, with schema and checksum verified.

        Raises
        ------
        QuarantineError
            If no run was saved here, or either file is unreadable,
            schema-mismatched, or fails its checksum.
        """
        if not self.manifest_path.exists():
            raise QuarantineError(
                f"no quarantine run in {self.directory} "
                f"(missing {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8")
            )
        except (ValueError, OSError) as exc:
            raise QuarantineError(
                f"unreadable quarantine manifest: {exc}"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("schema") != SCHEMA_VERSION
        ):
            raise QuarantineError(
                f"quarantine manifest schema mismatch in {self.directory}"
            )
        try:
            blob = self.records_path.read_bytes()
        except OSError as exc:
            raise QuarantineError(
                f"unreadable quarantine records: {exc}"
            ) from exc
        if sha256_bytes(blob) != manifest.get("records_sha256"):
            raise QuarantineError(
                f"quarantine records checksum mismatch in {self.directory} "
                "(the records file was modified or torn)"
            )
        records = [
            QuarantineRecord.from_payload(json.loads(row))
            for row in blob.decode("utf-8").splitlines()
            if row.strip()
        ]
        if len(records) != manifest.get("record_count"):
            raise QuarantineError(
                f"quarantine record count mismatch in {self.directory}"
            )
        return QuarantineRun(
            source=manifest["source"],
            source_sha256=manifest["source_sha256"],
            policies=dict(manifest["policies"]),
            buffer_size=int(manifest["buffer_size"]),
            records=records,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuarantineStore({str(self.directory)!r})"
