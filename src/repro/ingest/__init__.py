"""Hardened data boundary: stream sanitization, quarantine, replay.

Real counterparts of the paper's datasets (IMDB, AS links, Facebook,
DBLP) are dirty: duplicated edges, self loops, out-of-order timestamps,
weight glitches, even deletion events.  This package cleans such streams
*before* they reach :class:`~repro.graph.dynamic.TemporalGraph`:

* :mod:`repro.ingest.rules` — the deterministic rule catalog
  (``self-loop``, ``deletion``, ``weight-increase``, ``duplicate``,
  ``out-of-order``, plus the line-level ``parse``), each under a
  ``strict`` / ``repair`` / ``quarantine`` policy;
* :mod:`repro.ingest.sanitizer` — :class:`Sanitizer`, the streaming
  chain with a bounded timestamp-reorder buffer;
* :mod:`repro.ingest.quarantine` — :class:`QuarantineStore`, atomic and
  checksummed capture of diverted events with full provenance;
* :mod:`repro.ingest.replay` — :func:`replay_quarantine`, re-driving a
  recorded run under a changed policy (checksum-verified, byte-exact);
* :mod:`repro.ingest.report` — :class:`StreamHealthReport`, the typed
  per-rule counters behind ``repro validate`` and the ``ingest.health``
  resilience event.

Wiring: ``read_edge_stream(..., sanitizer=...)`` /
``read_edge_list(..., sanitizer=...)`` in :mod:`repro.datasets.io`, and
the ``repro validate`` / ``repro sanitize`` / ``repro quarantine`` CLI
subcommands.  See the "Ingesting dirty real-world streams" section of
``docs/datasets.md``.
"""

from repro.ingest.quarantine import (
    QuarantineRecord,
    QuarantineRun,
    QuarantineStore,
)
from repro.ingest.replay import replay_quarantine
from repro.ingest.report import MAX_ERROR_CATEGORIES, StreamHealthReport
from repro.ingest.rules import (
    DEFAULT_POLICIES,
    PARSE_RULE,
    POLICIES,
    RULE_CHAIN,
    RULE_NAMES,
    IngestError,
    QuarantineError,
    SanitizationError,
    check_policies,
)
from repro.ingest.sanitizer import DEFAULT_BUFFER_SIZE, Sanitizer

__all__ = [
    "DEFAULT_BUFFER_SIZE",
    "DEFAULT_POLICIES",
    "MAX_ERROR_CATEGORIES",
    "PARSE_RULE",
    "POLICIES",
    "RULE_CHAIN",
    "RULE_NAMES",
    "IngestError",
    "QuarantineError",
    "QuarantineRecord",
    "QuarantineRun",
    "QuarantineStore",
    "SanitizationError",
    "Sanitizer",
    "StreamHealthReport",
    "check_policies",
    "replay_quarantine",
]
