"""The sanitization rules and their per-rule policies.

Each rule detects one way a real-world edge stream violates the paper's
clean insertion-only model (``G_t1 ⊆ G_t2``, simple graph, non-increasing
weights, monotone timestamps) and knows how to *repair* the offending
event when asked.  Policy is per rule:

* ``strict`` — raise :class:`SanitizationError` at the first offence;
* ``repair`` — fix (or drop) the event deterministically and count it;
* ``quarantine`` — divert the original event to the quarantine store.

Rules run in the fixed, documented order of :data:`RULE_CHAIN`:
``self-loop`` → ``deletion`` → ``weight-increase`` → ``duplicate`` →
``out-of-order``.  The order matters for events that offend twice (a
re-observed edge with a heavier weight is first clamped by
``weight-increase``, then collapsed by ``duplicate``), and it is part of
the determinism contract: same bytes + same policies ⇒ same decisions.

The pseudo-rule ``parse`` covers lines that never became events
(malformed fields, bad numbers, undecodable bytes); it supports only
``strict`` and ``quarantine`` because there is nothing to repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

Node = Hashable

#: Policy names, in documentation order.
POLICIES = ("strict", "repair", "quarantine")

#: Event-level rules, in the order the chain applies them.
RULE_CHAIN = (
    "self-loop",
    "deletion",
    "weight-increase",
    "duplicate",
    "out-of-order",
)

#: The line-level pseudo-rule for unparseable input.
PARSE_RULE = "parse"

#: Every configurable rule name.
RULE_NAMES = RULE_CHAIN + (PARSE_RULE,)

#: Default policy per rule: repair everything repairable, quarantine the
#: unparseable — a sanitized read never crashes on dirty data unless the
#: caller opts into ``strict``.
DEFAULT_POLICIES: Dict[str, str] = {
    **{name: "repair" for name in RULE_CHAIN},
    PARSE_RULE: "quarantine",
}


class IngestError(ValueError):
    """Base error of the ingestion layer (a :class:`ValueError`)."""


class SanitizationError(IngestError):
    """A rule in ``strict`` policy rejected the stream.

    Attributes
    ----------
    rule:
        The offending rule's name.
    lineno:
        1-based source line (0 for programmatic events).
    """

    def __init__(self, rule: str, lineno: int, message: str) -> None:
        location = f"line {lineno}: " if lineno else ""
        super().__init__(f"{location}[{rule}] {message}")
        self.rule = rule
        self.lineno = lineno


class QuarantineError(IngestError):
    """A quarantine store is unreadable, corrupt, or unreplayable."""


def check_policies(
    policies: Optional[Mapping[str, str]],
    base: Optional[Mapping[str, str]] = None,
) -> Dict[str, str]:
    """Merge ``policies`` over ``base`` (default
    :data:`DEFAULT_POLICIES`), validating names.

    Unknown rule names and unknown policy modes raise ``ValueError``;
    ``parse`` additionally rejects ``repair`` (an unparseable line has
    nothing to repair).
    """
    merged = dict(DEFAULT_POLICIES if base is None else base)
    for name, mode in (policies or {}).items():
        if name not in RULE_NAMES:
            raise ValueError(
                f"unknown sanitizer rule {name!r}; "
                f"known rules: {', '.join(RULE_NAMES)}"
            )
        if mode not in POLICIES:
            raise ValueError(
                f"policy for {name!r} must be one of {POLICIES}, "
                f"got {mode!r}"
            )
        if name == PARSE_RULE and mode == "repair":
            raise ValueError(
                "the 'parse' rule cannot repair (a line that failed to "
                "parse has no event to fix); use 'strict' or 'quarantine'"
            )
        merged[name] = mode
    return merged


@dataclass(frozen=True)
class ParsedEvent:
    """One parsed edge event with source provenance.

    ``seq`` is the 0-based arrival index among parsed events (stateful
    rules operate in arrival order); ``lineno`` is the 1-based source
    line (0 for programmatic feeds); ``raw`` is the original line text.
    """

    time: float
    u: Node
    v: Node
    weight: float
    seq: int = 0
    lineno: int = 0
    raw: str = ""

    def replaced(self, *, time: Optional[float] = None,
                 weight: Optional[float] = None) -> "ParsedEvent":
        """A copy with the repaired ``time`` and/or ``weight``."""
        return ParsedEvent(
            time=self.time if time is None else time,
            u=self.u,
            v=self.v,
            weight=self.weight if weight is None else weight,
            seq=self.seq,
            lineno=self.lineno,
            raw=self.raw,
        )


@dataclass
class StreamState:
    """Mutable cross-event state the rules consult.

    ``seen`` maps each canonical edge to the weight of its *first
    admitted* observation; ``max_arrival_time`` is the largest timestamp
    that has arrived so far; ``last_emitted_time`` is the timestamp of
    the last event released from the reorder buffer (events below it can
    no longer be reordered, only clamped).
    """

    seen: Dict[Tuple[Node, Node], float]
    max_arrival_time: float
    last_emitted_time: float

    @classmethod
    def fresh(cls) -> "StreamState":
        """The state before any event has been fed."""
        return cls(
            seen={},
            max_arrival_time=float("-inf"),
            last_emitted_time=float("-inf"),
        )


def canonical_edge(u: Node, v: Node) -> Tuple[Node, Node]:
    """Order-insensitive identity of the undirected edge ``{u, v}``.

    Node ids of one stream are homogeneous in practice (all ints or all
    strings); mixed types fall back to ``(type, repr)`` ordering so the
    result stays deterministic without comparing unlike types.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        ku = (type(u).__name__, repr(u))
        kv = (type(v).__name__, repr(v))
        return (u, v) if ku <= kv else (v, u)


class SelfLoopRule:
    """``u == v`` — meaningless for shortest paths; repair drops it."""

    name = "self-loop"

    def offends(self, event: ParsedEvent, state: StreamState) -> Optional[str]:
        """The offence description, or ``None`` if the event is clean."""
        if event.u == event.v:
            return f"self loop at node {event.u!r}"
        return None

    def repair(self, event: ParsedEvent,
               state: StreamState) -> Optional[ParsedEvent]:
        """Drop the event (a simple graph has no self loops)."""
        return None


class DeletionRule:
    """Non-positive weight marks an edge *deletion* event.

    Real temporal dumps encode unfollows/withdrawals as zero- or
    negative-weight rows; the paper's model is insertion-only, so repair
    drops the deletion (keeping the stream growth-only).
    """

    name = "deletion"

    def offends(self, event: ParsedEvent, state: StreamState) -> Optional[str]:
        """The offence description, or ``None`` if the event is clean."""
        if event.weight <= 0:
            return (
                f"deletion event (weight {event.weight:g}) for edge "
                f"({event.u!r}, {event.v!r}); the model is insertion-only"
            )
        return None

    def repair(self, event: ParsedEvent,
               state: StreamState) -> Optional[ParsedEvent]:
        """Drop the deletion event."""
        return None


class WeightIncreaseRule:
    """A re-observed edge got *heavier* — distances could increase.

    Repair clamps the weight down to the first observed weight (the one
    snapshot materialisation keeps), restoring the non-increasing-weight
    contract; the event then continues into the ``duplicate`` rule.
    """

    name = "weight-increase"

    def offends(self, event: ParsedEvent, state: StreamState) -> Optional[str]:
        """The offence description, or ``None`` if the event is clean."""
        first = state.seen.get(canonical_edge(event.u, event.v))
        if first is not None and event.weight > first:
            return (
                f"edge ({event.u!r}, {event.v!r}) weight increased "
                f"{first:g} -> {event.weight:g}"
            )
        return None

    def repair(self, event: ParsedEvent,
               state: StreamState) -> Optional[ParsedEvent]:
        """Clamp the weight to the first observation's."""
        first = state.seen[canonical_edge(event.u, event.v)]
        return event.replaced(weight=first)


class DuplicateRule:
    """A re-observation of an already admitted edge; repair collapses it.

    The first admitted observation wins (matching
    ``TemporalGraph._materialise``, which keeps the first weight).
    """

    name = "duplicate"

    def offends(self, event: ParsedEvent, state: StreamState) -> Optional[str]:
        """The offence description, or ``None`` if the event is clean."""
        if canonical_edge(event.u, event.v) in state.seen:
            return f"duplicate edge ({event.u!r}, {event.v!r})"
        return None

    def repair(self, event: ParsedEvent,
               state: StreamState) -> Optional[ParsedEvent]:
        """Drop the re-observation."""
        return None


class OutOfOrderRule:
    """The timestamp went backwards relative to earlier arrivals.

    Repair reorders the event through the sanitizer's bounded buffer
    when it still fits (its time is not below the last *emitted* time),
    and otherwise clamps its timestamp up to the last emitted time — the
    bounded-buffer guarantee is what keeps memory constant on arbitrarily
    disordered streams.
    """

    name = "out-of-order"

    def offends(self, event: ParsedEvent, state: StreamState) -> Optional[str]:
        """The offence description, or ``None`` if the event is clean."""
        if event.time < state.max_arrival_time:
            return (
                f"timestamp {event.time:g} arrived after "
                f"{state.max_arrival_time:g}"
            )
        return None

    def repair(self, event: ParsedEvent,
               state: StreamState) -> Optional[ParsedEvent]:
        """Reorder within the buffer, or clamp past its horizon."""
        if event.time < state.last_emitted_time:
            return event.replaced(time=state.last_emitted_time)
        return event


def build_chain() -> Tuple[
    SelfLoopRule, DeletionRule, WeightIncreaseRule, DuplicateRule,
    OutOfOrderRule,
]:
    """Fresh rule instances in :data:`RULE_CHAIN` order."""
    return (
        SelfLoopRule(),
        DeletionRule(),
        WeightIncreaseRule(),
        DuplicateRule(),
        OutOfOrderRule(),
    )
