"""Typed per-rule health counters for one sanitization pass.

:class:`StreamHealthReport` is the auditable summary of everything the
:class:`~repro.ingest.sanitizer.Sanitizer` did to a stream: how many
lines were seen and parsed, how many events each rule repaired, dropped,
or quarantined, and how many lines failed to parse (by bounded
category).  It replaces the ad-hoc ``ReadStats`` for sanitized reads —
the same counters back the ``repro validate`` output, the
``ingest.health`` resilience event, and the golden-file determinism
tests, so one pass produces one authoritative record.

The report is a pure value: same input bytes + same policy config
produce an identical payload (:meth:`StreamHealthReport.to_payload` is
sorted and JSON-stable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.resilience import log_event

#: Cap on distinct parse-error categories kept (overflow lands in
#: ``"other"``) so a pathological file cannot balloon the report.
MAX_ERROR_CATEGORIES = 8

#: Overflow bucket for parse-error categories past the cap.
OVERFLOW_CATEGORY = "other"


def bump_bounded(counts: Dict[str, int], key: str,
                 cap: int = MAX_ERROR_CATEGORIES) -> None:
    """Increment ``counts[key]``, folding new keys past ``cap`` into
    :data:`OVERFLOW_CATEGORY`."""
    if key not in counts and len(counts) >= cap:
        key = OVERFLOW_CATEGORY
    counts[key] = counts.get(key, 0) + 1


@dataclass
class StreamHealthReport:
    """Counters from one sanitization pass, keyed by rule.

    Attributes
    ----------
    lines:
        Data lines seen (blank lines and ``#`` comments excluded).
    parsed:
        Lines that parsed into an edge event.
    emitted:
        Events admitted into the sanitized stream.
    malformed:
        Lines that failed to parse (see ``parse_errors`` for the
        bounded per-category breakdown).
    repaired:
        ``rule -> count`` of events modified and kept (timestamp
        clamp/reorder, weight clamp).
    dropped:
        ``rule -> count`` of events removed by a ``repair`` policy
        (duplicate collapse, self-loop drop, deletion drop).
    quarantined:
        ``rule -> count`` of events (or malformed lines) diverted by a
        ``quarantine`` policy.
    parse_errors:
        Bounded ``category -> count`` of parse failures (``fields``,
        ``time``, ``weight``, ``node``, ``encoding``, ...).
    """

    source: str = ""
    lines: int = 0
    parsed: int = 0
    emitted: int = 0
    malformed: int = 0
    repaired: Dict[str, int] = field(default_factory=dict)
    dropped: Dict[str, int] = field(default_factory=dict)
    quarantined: Dict[str, int] = field(default_factory=dict)
    parse_errors: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_repair(self, rule: str) -> None:
        """Count one event modified (and kept) by ``rule``."""
        bump_bounded(self.repaired, rule)

    def record_drop(self, rule: str) -> None:
        """Count one event removed by ``rule`` under ``repair``."""
        bump_bounded(self.dropped, rule)

    def record_quarantine(self, rule: str) -> None:
        """Count one event (or line) diverted by ``rule``."""
        bump_bounded(self.quarantined, rule)

    def record_parse_error(self, category: str) -> None:
        """Count one malformed line of the given bounded ``category``."""
        self.malformed += 1
        bump_bounded(self.parse_errors, category)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_issues(self) -> int:
        """Total rule firings (repairs + drops + quarantines + parse)."""
        return (
            self.malformed
            + sum(self.repaired.values())
            + sum(self.dropped.values())
            + sum(self.quarantined.values())
        )

    @property
    def clean(self) -> bool:
        """Whether the stream passed every rule untouched."""
        return self.total_issues() == 0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-stable form (sorted sub-dicts) for events and goldens."""
        return {
            "source": self.source,
            "lines": self.lines,
            "parsed": self.parsed,
            "emitted": self.emitted,
            "malformed": self.malformed,
            "repaired": dict(sorted(self.repaired.items())),
            "dropped": dict(sorted(self.dropped.items())),
            "quarantined": dict(sorted(self.quarantined.items())),
            "parse_errors": dict(sorted(self.parse_errors.items())),
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (the ``repro validate`` body)."""
        out = [
            f"lines     {self.lines}",
            f"parsed    {self.parsed}",
            f"emitted   {self.emitted}",
            f"malformed {self.malformed}"
            + (f"  ({_render(self.parse_errors)})" if self.parse_errors else ""),
        ]
        for label, counts in (
            ("repaired", self.repaired),
            ("dropped", self.dropped),
            ("quarantined", self.quarantined),
        ):
            if counts:
                out.append(f"{label:<9} {sum(counts.values())}  ({_render(counts)})")
        out.append("status    " + ("clean" if self.clean else
                                   f"{self.total_issues()} issue(s)"))
        return "\n".join(out)

    def emit(self) -> None:
        """Report the pass through the resilience event stream."""
        log_event(
            "ingest.health",
            source=self.source,
            lines=self.lines,
            parsed=self.parsed,
            emitted=self.emitted,
            malformed=self.malformed,
            repaired=sum(self.repaired.values()),
            dropped=sum(self.dropped.values()),
            quarantined=sum(self.quarantined.values()),
            clean=self.clean,
        )


def _render(counts: Dict[str, int]) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
