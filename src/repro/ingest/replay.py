"""Replay a quarantined run under a changed policy.

The quarantine manifest pins the run's *entire* identity: the source
file's path and SHA-256, the policy configuration, and the reorder
buffer size.  :func:`replay_quarantine` re-drives ingestion from that
source with policy overrides applied — after verifying the source bytes
are unchanged — so the result is exactly (byte-for-byte) what direct
ingestion under the new policy would have produced.  Switching a rule
from ``quarantine`` to ``repair`` and replaying is therefore equivalent
to having ingested with ``repair`` in the first place, which is the
contract the acceptance tests pin.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Tuple, Union

from repro.graph.dynamic import TemporalGraph
from repro.ingest.quarantine import (
    QuarantineStore,
    sha256_file,
)
from repro.ingest.rules import QuarantineError, check_policies
from repro.ingest.sanitizer import Sanitizer

PathLike = Union[str, Path]


def replay_quarantine(
    directory: PathLike,
    policy_overrides: Optional[Mapping[str, str]] = None,
    *,
    quarantine: Optional[QuarantineStore] = None,
) -> Tuple[TemporalGraph, Sanitizer]:
    """Re-ingest a quarantined run's source under overridden policies.

    Parameters
    ----------
    directory:
        A directory previously written by a sanitized read with a
        :class:`~repro.ingest.quarantine.QuarantineStore` attached.
    policy_overrides:
        ``rule -> policy`` changes applied over the run's recorded
        configuration (e.g. ``{"deletion": "repair"}``).
    quarantine:
        Optional store for the *replayed* run's own diverted records
        (use a different directory than ``directory``).

    Returns
    -------
    (TemporalGraph, Sanitizer)
        The re-ingested stream and the spent sanitizer (its ``report``
        and ``records`` describe the replay).

    Raises
    ------
    QuarantineError
        If the store is missing/corrupt, the recorded source no longer
        exists, or the source bytes changed since the quarantine was
        written (checksum mismatch) — a replay over different bytes
        would not be a replay.  The source is verified *twice*: before
        the read, and again after it, so a writer racing the replay
        (appending to a live stream file mid-read) is detected instead
        of silently contributing events the recorded run never saw.
    """
    store = QuarantineStore(directory)
    run = store.load()
    policies = check_policies(policy_overrides, base=run.policies)
    source = Path(run.source)
    if not source.exists():
        raise QuarantineError(
            f"quarantined source {run.source!r} no longer exists; "
            "replay needs the original stream bytes"
        )
    actual_sha = sha256_file(source)
    if actual_sha != run.source_sha256:
        raise QuarantineError(
            f"quarantined source {run.source!r} changed since the run "
            f"was recorded (sha256 {actual_sha[:12]}… != "
            f"{run.source_sha256[:12]}…); refusing to replay"
        )
    sanitizer = Sanitizer(
        policies, buffer_size=run.buffer_size, quarantine=quarantine
    )
    # Imported here: datasets.io type-references the sanitizer, so a
    # module-level import would be circular.
    from repro.datasets.io import read_edge_stream

    temporal = read_edge_stream(source, sanitizer=sanitizer)
    final_sha = sha256_file(source)
    if final_sha != run.source_sha256:
        raise QuarantineError(
            f"quarantined source {run.source!r} changed during replay "
            f"(sha256 {final_sha[:12]}… != {run.source_sha256[:12]}…); "
            "a concurrent writer raced the replay — rerun once the "
            "stream is quiescent"
        )
    return temporal, sanitizer
