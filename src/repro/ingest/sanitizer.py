"""The streaming sanitization pipeline.

:class:`Sanitizer` sits between a raw edge source (a TSV file, a
programmatic event feed) and :class:`~repro.graph.dynamic.TemporalGraph`
construction.  Events are fed in arrival order; each passes through the
rule chain (:data:`~repro.ingest.rules.RULE_CHAIN`) under its per-rule
policy, then through a bounded min-heap reorder buffer that absorbs
non-monotone timestamps, and comes out as a clean, time-sorted,
insertion-only stream the rest of the library can trust.

Everything is deterministic: no randomness, no clock reads — the
emitted stream, the :class:`~repro.ingest.report.StreamHealthReport`,
and the quarantine records are pure functions of the input bytes and the
policy configuration.  That is what makes the quarantine *replayable*
and the golden-file tests byte-exact.

Typical file usage goes through :func:`repro.datasets.io.read_edge_stream`::

    from repro.datasets.io import read_edge_stream
    from repro.ingest import QuarantineStore, Sanitizer

    sanitizer = Sanitizer({"deletion": "quarantine"},
                          quarantine=QuarantineStore("runs/q"))
    temporal = read_edge_stream("dirty.tsv", sanitizer=sanitizer)
    print(sanitizer.report.summary())
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.graph.dynamic import EdgeEvent
from repro.ingest.quarantine import QuarantineRecord, QuarantineStore
from repro.ingest.report import StreamHealthReport
from repro.ingest.rules import (
    PARSE_RULE,
    IngestError,
    Node,
    ParsedEvent,
    SanitizationError,
    StreamState,
    build_chain,
    canonical_edge,
    check_policies,
)

#: Default reorder-buffer capacity: how far (in events) a timestamp may
#: arrive late and still be reordered instead of clamped.
DEFAULT_BUFFER_SIZE = 64

#: Heap entries order by ``(time, seq)`` — stable for equal timestamps.
_HeapEntry = Tuple[float, int, ParsedEvent]

_FeedItem = Union[EdgeEvent, Sequence[object]]


class Sanitizer:
    """A composable, policy-driven cleaning pass over an edge stream.

    Parameters
    ----------
    policies:
        Optional ``rule -> policy`` overrides merged over
        :data:`~repro.ingest.rules.DEFAULT_POLICIES` (repair everything,
        quarantine unparseable lines).  See
        :data:`~repro.ingest.rules.RULE_NAMES` for the rule catalog and
        :data:`~repro.ingest.rules.POLICIES` for the modes.
    buffer_size:
        Reorder-buffer capacity (events).  Larger buffers repair deeper
        timestamp disorder at the cost of memory; ``0`` disables
        reordering entirely (every late timestamp is clamped).
    quarantine:
        Optional :class:`~repro.ingest.quarantine.QuarantineStore`; when
        configured, :meth:`finalize` persists every diverted record with
        the run's policy config and source checksum so the run can be
        audited and replayed.

    One instance sanitizes one stream; feed events in arrival order,
    then :meth:`flush` and :meth:`finalize`.
    """

    def __init__(
        self,
        policies: Optional[Mapping[str, str]] = None,
        *,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
        quarantine: Optional[QuarantineStore] = None,
    ) -> None:
        if buffer_size < 0:
            raise ValueError(
                f"buffer_size must be >= 0, got {buffer_size}"
            )
        self.policies = check_policies(policies)
        self.buffer_size = buffer_size
        self.quarantine = quarantine
        self.report = StreamHealthReport()
        self.records: List[QuarantineRecord] = []
        self._chain = build_chain()
        self._state = StreamState.fresh()
        self._buffer: List[_HeapEntry] = []
        self._seq = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(
        self,
        time: float,
        u: Node,
        v: Node,
        weight: float = 1.0,
        *,
        lineno: int = 0,
        raw: str = "",
    ) -> List[EdgeEvent]:
        """Process one arrived event; returns the events emitted *now*.

        Emission lags arrival by up to ``buffer_size`` events (the
        reorder window); :meth:`flush` drains the remainder.
        """
        self._check_open()
        event = ParsedEvent(
            time=time, u=u, v=v, weight=weight,
            seq=self._seq, lineno=lineno, raw=raw,
        )
        self._seq += 1
        self.report.lines += 1
        self.report.parsed += 1
        for a_rule in self._chain:
            offence = a_rule.offends(event, self._state)
            if offence is None:
                continue
            policy = self.policies[a_rule.name]
            if policy == "strict":
                raise SanitizationError(a_rule.name, event.lineno, offence)
            if policy == "quarantine":
                self._divert(a_rule.name, offence, event)
                return []
            repaired = a_rule.repair(event, self._state)
            if repaired is None:
                self.report.record_drop(a_rule.name)
                return []
            self.report.record_repair(a_rule.name)
            event = repaired
        return self._admit(event)

    def feed_parse_error(
        self, lineno: int, raw: str, reason: str, category: str
    ) -> None:
        """Report one line that never became an event (bad fields,
        unparseable numbers, undecodable bytes).

        Under the ``parse`` rule's ``strict`` policy this raises
        :class:`~repro.ingest.rules.SanitizationError`; under
        ``quarantine`` the line is counted (bounded ``category``) and a
        provenance record is kept for the store.
        """
        self._check_open()
        self.report.lines += 1
        self.report.record_parse_error(category)
        if self.policies[PARSE_RULE] == "strict":
            raise SanitizationError(PARSE_RULE, lineno, reason)
        self.records.append(
            QuarantineRecord(
                rule=PARSE_RULE, reason=reason, seq=-1,
                lineno=lineno, raw=raw,
            )
        )

    def flush(self) -> List[EdgeEvent]:
        """Drain the reorder buffer (call once, after the last feed)."""
        self._check_open()
        emitted: List[EdgeEvent] = []
        while self._buffer:
            emitted.append(self._pop())
        return emitted

    def finalize(
        self,
        *,
        source: str = "",
        source_sha256: str = "",
    ) -> StreamHealthReport:
        """Close the pass: persist the quarantine store (if configured),
        emit the ``ingest.health`` event, and return the report.

        Raises
        ------
        IngestError
            If events are still buffered (call :meth:`flush` first) or
            the sanitizer was already finalized.
        """
        self._check_open()
        if self._buffer:
            raise IngestError(
                "sanitizer still holds buffered events; call flush() "
                "before finalize()"
            )
        self._finalized = True
        self.report.source = source
        if self.quarantine is not None:
            self.quarantine.save(
                self.records,
                source=source,
                source_sha256=source_sha256,
                policies=self.policies,
                buffer_size=self.buffer_size,
            )
        self.report.emit()
        return self.report

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def sanitize_events(self, events: Iterable[_FeedItem]) -> List[EdgeEvent]:
        """Run an in-memory event sequence through the full pipeline.

        Items are :class:`~repro.graph.dynamic.EdgeEvent` or
        ``(time, u, v[, weight])`` tuples, in arrival order.  Feeds,
        flushes, and finalizes (with ``source="<events>"``), so the
        sanitizer is spent afterwards.
        """
        emitted: List[EdgeEvent] = []
        for item in events:
            if isinstance(item, EdgeEvent):
                time, u, v, weight = item.time, item.u, item.v, item.weight
            elif len(item) == 3:
                time, u, v = item  # type: ignore[misc]
                weight = 1.0
            else:
                time, u, v, weight = item  # type: ignore[misc]
            emitted.extend(self.feed(float(time), u, v, float(weight)))  # type: ignore[arg-type]
        emitted.extend(self.flush())
        self.finalize(source="<events>")
        return emitted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._finalized:
            raise IngestError(
                "this sanitizer was finalized; build a fresh one per stream"
            )

    def _divert(self, rule_name: str, reason: str,
                event: ParsedEvent) -> None:
        self.report.record_quarantine(rule_name)
        self.records.append(
            QuarantineRecord(
                rule=rule_name, reason=reason, seq=event.seq,
                lineno=event.lineno, raw=event.raw, time=event.time,
                u=event.u, v=event.v, weight=event.weight,
            )
        )

    def _admit(self, event: ParsedEvent) -> List[EdgeEvent]:
        state = self._state
        state.seen[canonical_edge(event.u, event.v)] = event.weight
        if event.time > state.max_arrival_time:
            state.max_arrival_time = event.time
        heapq.heappush(self._buffer, (event.time, event.seq, event))
        emitted: List[EdgeEvent] = []
        while len(self._buffer) > self.buffer_size:
            emitted.append(self._pop())
        return emitted

    def _pop(self) -> EdgeEvent:
        time, _seq, event = heapq.heappop(self._buffer)
        self._state.last_emitted_time = time
        self.report.emitted += 1
        return EdgeEvent(time=time, u=event.u, v=event.v,
                         weight=event.weight)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        modes = ", ".join(
            f"{name}={mode}" for name, mode in sorted(self.policies.items())
        )
        return f"Sanitizer({modes})"
