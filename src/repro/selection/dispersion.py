"""Dispersion-based candidate selection (Section 4.2.2).

Both dispersion objectives — maximise the *average* pairwise distance
(MaxAvg, Eq. 1) or the *minimum* pairwise distance (MaxMin, Eq. 2) of the
selected set — are NP-hard even given all distances, so the paper (and we)
use the standard greedy: repeatedly add the node that maximises the
dispersion objective against the nodes selected so far.

Cost model (Table 1's "Dispersion-based" row): the greedy needs one SSSP
on ``G_t1`` per selected node — ``m`` in total — and *those same rows are
the candidates' t1 distance rows*, so the top-k phase only pays ``m`` more
SSSPs on ``G_t2``.  Everything is charged and cached accordingly.

Implementation notes
--------------------
* The first pick is drawn uniformly at random (seeded) — the greedy is
  known to be robust to initialisation for these objectives.
* Distances to unreachable nodes are scored as ``n`` (the node count), a
  finite "farther than any real path" sentinel.  On connected snapshots
  this changes nothing; on fragmented ones (DBLP-like) it makes the greedy
  spread across components instead of dividing by infinity.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.graph.traversal import single_source_distances
from repro.selection.base import (
    GENERATION_PHASE,
    CandidateSelector,
    SelectionResult,
    register_selector,
)

Node = Hashable
DistanceRow = Dict[Node, float]


def greedy_dispersion(
    g1: Graph,
    count: int,
    mode: str,
    budget: SPBudget,
    rng: np.random.Generator,
    phase: str = GENERATION_PHASE,
) -> Tuple[List[Node], Dict[Node, DistanceRow]]:
    """Greedily pick ``count`` dispersed nodes from ``g1``.

    Parameters
    ----------
    g1:
        The first snapshot (dispersion never looks at ``G_t2``).
    count:
        Number of nodes to select (clamped to ``g1``'s node count).
    mode:
        ``"min"`` for MaxMin (maximise the minimum distance to the
        selected set) or ``"avg"`` for MaxAvg (maximise the average).
    budget:
        Charged one ``G_t1`` SSSP per selected node under ``phase``.
    rng:
        Seeded generator for the initial pick.

    Returns
    -------
    (selected, d1_rows):
        The picks in selection order and their ``G_t1`` distance rows —
        callers reuse the rows so the SSSPs are never paid twice.
    """
    if mode not in ("min", "avg"):
        raise ValueError(f"mode must be 'min' or 'avg', got {mode!r}")
    nodes = list(g1.nodes())
    count = min(count, len(nodes))
    if count == 0:
        return [], {}
    index = {u: i for i, u in enumerate(nodes)}
    far = float(len(nodes))  # finite sentinel for "unreachable"

    first = nodes[int(rng.integers(len(nodes)))]
    selected: List[Node] = []
    rows: Dict[Node, DistanceRow] = {}

    # Aggregates of distance-to-selected-set per node.
    min_dist = np.full(len(nodes), np.inf)
    sum_dist = np.zeros(len(nodes))
    chosen = np.zeros(len(nodes), dtype=bool)

    current = first
    for _ in range(count):
        budget.charge(phase, "g1", 1)
        row = single_source_distances(g1, current)
        rows[current] = row
        selected.append(current)
        chosen[index[current]] = True

        dist_vec = np.full(len(nodes), far)
        for v, d in row.items():
            dist_vec[index[v]] = d
        np.minimum(min_dist, dist_vec, out=min_dist)
        sum_dist += dist_vec

        if len(selected) == count:
            break
        score = min_dist if mode == "min" else sum_dist / len(selected)
        score = np.where(chosen, -np.inf, score)
        current = nodes[int(score.argmax())]
    return selected, rows


class _DispersionSelector(CandidateSelector):
    """Shared select() for the two dispersion objectives."""

    mode: str = "min"

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        # Seeded default: an rng-less call must still be reproducible
        rng = rng if rng is not None else np.random.default_rng(0)
        selected, rows = greedy_dispersion(g1, m, self.mode, budget, rng)
        return SelectionResult(candidates=selected, d1_rows=rows)


@register_selector("MaxMin")
class MaxMinSelector(_DispersionSelector):
    """Greedy MaxMin dispersion: candidates that *cover* the graph."""

    mode = "min"


@register_selector("MaxAvg")
class MaxAvgSelector(_DispersionSelector):
    """Greedy MaxAvg dispersion: candidates on the graph's *periphery*."""

    mode = "avg"
