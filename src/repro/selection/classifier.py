"""Classification-based candidate selection (Sections 4.2.5 & 5.3).

A trained :class:`~repro.ml.training.TrainedModel` predicts, for every
node of the evaluation ``G_t1``, the probability that it belongs to the
greedy vertex cover of the pair graph; nodes are nominated in decreasing
probability order.

Budget accounting (Table 1's "Classification-based" row): producing the
features needs three landmark tables — ``3 · 2l`` generation SSSPs — so
only ``m − 3l`` fresh candidates fit in the remaining budget.  As with the
other landmark approaches, the 3l landmark nodes ride along for free
(their rows exist in both snapshots), which is the "handicap ... they are
able to catch up" dynamic of Figure 3.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection.base import (
    CandidateSelector,
    SelectionResult,
    register_selector,
)
from repro.selection.landmark import effective_num_landmarks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ml.training import TrainedModel

# NOTE: repro.ml imports are deferred to call time throughout this module:
# repro.ml.features depends on the dispersion/landmark selectors, so a
# module-level import here would close an import cycle.


class _ClassifierSelector(CandidateSelector):
    """Shared select() for the local and global classifier selectors."""

    def __init__(self, model: "TrainedModel") -> None:
        from repro.ml.training import TrainedModel

        if not isinstance(model, TrainedModel):
            raise TypeError(
                f"model must be a TrainedModel, got {type(model).__name__}"
            )
        self._validate_model(model)
        self.model = model

    def _validate_model(self, model: "TrainedModel") -> None:
        raise NotImplementedError

    def _feature_matrix(self, matrix: np.ndarray, g1: Graph, g2: Graph):
        return matrix

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        from repro.ml.features import extract_node_features

        self._check_m(m)
        # Seeded default: an rng-less call must still be reproducible
        rng = rng if rng is not None else np.random.default_rng(0)
        l = effective_num_landmarks(self.model.num_landmarks, m, tables=3)
        feats = extract_node_features(g1, g2, l, rng, budget=budget)
        matrix = self._feature_matrix(feats.matrix, g1, g2)
        proba = self.model.score_nodes(matrix)

        order = sorted(
            range(len(feats.nodes)),
            key=lambda i: (-proba[i], repr(feats.nodes[i])),
        )
        landmark_set = set(feats.landmark_nodes)
        candidates = list(feats.landmark_nodes)
        # Each fresh candidate costs two SSSPs in the top-k phase.  When
        # landmark policies happened to pick overlapping nodes the cached
        # set is smaller than 3l but the 6l generation SSSPs were still
        # paid, so cap the fresh picks by the *remaining* budget too.
        room = min(m - len(candidates), budget.remaining // 2)
        for i in order:
            if room <= 0:
                break
            u = feats.nodes[i]
            if u in landmark_set:
                continue
            candidates.append(u)
            room -= 1
        return SelectionResult(
            candidates=candidates[:m],
            d1_rows=feats.d1_rows,
            d2_rows=feats.d2_rows,
        )


@register_selector("L-Classifier")
class LocalClassifierSelector(_ClassifierSelector):
    """Per-dataset classifier over the 10 node features."""

    def _validate_model(self, model: "TrainedModel") -> None:
        if model.uses_graph_features:
            raise ValueError(
                "L-Classifier needs a node-feature model; this model was "
                "trained with graph-level features (use G-Classifier)"
            )


@register_selector("G-Classifier")
class GlobalClassifierSelector(_ClassifierSelector):
    """Cross-dataset classifier with graph-level features appended."""

    def _validate_model(self, model: "TrainedModel") -> None:
        if not model.uses_graph_features:
            raise ValueError(
                "G-Classifier needs a model trained with graph-level "
                "features (use L-Classifier for node-only models)"
            )

    def _feature_matrix(self, matrix: np.ndarray, g1: Graph, g2: Graph):
        from repro.ml.features import append_graph_features, graph_level_features

        return append_graph_features(matrix, graph_level_features(g1, g2))
