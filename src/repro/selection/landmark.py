"""Landmark-based candidate selection (Section 4.2.3).

Sample ``l`` random landmarks from ``G_t1``, compute their SSSP rows in
both snapshots (2l SSSPs — Table 1's generation cost), and rank every node
``u`` by how much closer it came to the landmark set:

* **SumDiff** — the L1 norm of the per-landmark decrease vector
  ``Δ_L(u) = D_L1(u) − D_L2(u)``; a sampled estimate of how many distance
  changes ``u`` participates in (the greedy-cover intuition).
* **MaxDiff** — the L∞ norm: the single sharpest approach to any landmark.

The ``l`` landmarks themselves are returned at the head of the candidate
list: their distance rows exist in both snapshots already, so including
them is free, exactly mirroring the paper's observation that the random-
landmark budget share is "wasted" (they are rarely true endpoints) while
keeping the accounting at ``2m`` total.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.graph.landmarks import (
    LandmarkTable,
    delta_l1_norms,
    delta_linf_norms,
    landmark_delta_vectors,
)
from repro.graph.traversal import single_source_distances
from repro.selection.base import (
    GENERATION_PHASE,
    CandidateSelector,
    SelectionResult,
    register_selector,
)

Node = Hashable
DistanceRow = Dict[Node, float]

#: The paper fixes l = 10 for all landmark-based algorithms ("a larger
#: number of landmarks did not improve the performance").
DEFAULT_NUM_LANDMARKS = 10


def effective_num_landmarks(l: int, m: int, tables: int = 1) -> int:
    """Clamp the landmark count to what budget ``m`` can sustain.

    A selector building ``tables`` landmark sets (1 for plain/hybrid, 3
    for the classifier) spends ``tables * 2l`` generation SSSPs out of
    ``2m``; we keep at least half the budget for candidates.
    """
    if m < 2:
        raise ValueError(
            f"landmark-based selection needs a budget of m >= 2, got m={m}"
        )
    return max(1, min(l, m // (2 * tables)))


def sample_landmarks(
    g1: Graph, l: int, rng: np.random.Generator
) -> List[Node]:
    """``l`` distinct uniform-random landmarks from ``G_t1``'s nodes."""
    nodes = list(g1.nodes())
    if l > len(nodes):
        raise ValueError(f"cannot sample {l} landmarks from {len(nodes)} nodes")
    idx = rng.choice(len(nodes), size=l, replace=False)
    return [nodes[i] for i in sorted(int(i) for i in idx)]


def landmark_rows(
    graph: Graph,
    landmarks: Sequence[Node],
    budget: SPBudget,
    snapshot: str,
    phase: str = GENERATION_PHASE,
) -> Dict[Node, DistanceRow]:
    """One charged SSSP row per landmark on ``graph``."""
    rows: Dict[Node, DistanceRow] = {}
    for w in landmarks:
        budget.charge(phase, snapshot, 1)
        rows[w] = single_source_distances(graph, w)
    return rows


def tables_from_rows(
    landmarks: Sequence[Node],
    universe: Sequence[Node],
    rows1: Dict[Node, DistanceRow],
    rows2: Dict[Node, DistanceRow],
) -> Tuple[LandmarkTable, LandmarkTable]:
    """Assemble both snapshots' :class:`LandmarkTable` from cached rows."""
    universe = list(universe)
    index = {u: i for i, u in enumerate(universe)}
    mat1 = np.full((len(universe), len(landmarks)), np.inf, dtype=np.float32)
    mat2 = np.full_like(mat1, np.inf)
    for j, w in enumerate(landmarks):
        for v, d in rows1[w].items():
            i = index.get(v)
            if i is not None:
                mat1[i, j] = d
        for v, d in rows2[w].items():
            i = index.get(v)
            if i is not None:
                mat2[i, j] = d
    return (
        LandmarkTable(landmarks, universe, mat1),
        LandmarkTable(landmarks, universe, mat2),
    )


def landmark_delta_scores(
    g1: Graph,
    landmarks: Sequence[Node],
    rows1: Dict[Node, DistanceRow],
    rows2: Dict[Node, DistanceRow],
    norm: str,
) -> Dict[Node, float]:
    """Per-node landmark-delta norm (``norm`` is ``"l1"`` or ``"linf"``)."""
    if norm not in ("l1", "linf"):
        raise ValueError(f"norm must be 'l1' or 'linf', got {norm!r}")
    universe = list(g1.nodes())
    t1, t2 = tables_from_rows(landmarks, universe, rows1, rows2)
    delta = landmark_delta_vectors(t1, t2)
    norms = delta_l1_norms(delta) if norm == "l1" else delta_linf_norms(delta)
    return {u: float(norms[i]) for i, u in enumerate(universe)}


def assemble_candidates(
    landmarks: Sequence[Node], scores: Dict[Node, float], m: int
) -> List[Node]:
    """Landmarks first (free rows), then top-scored non-landmarks up to m."""
    landmark_set = set(landmarks)
    ranked = sorted(
        (u for u in scores if u not in landmark_set),
        key=lambda u: (-scores[u], repr(u)),
    )
    room = max(0, m - len(landmarks))
    return list(landmarks)[:m] + ranked[:room]


class _RandomLandmarkSelector(CandidateSelector):
    """Shared select() for SumDiff / MaxDiff with random landmarks."""

    norm: str = "l1"

    def __init__(self, num_landmarks: int = DEFAULT_NUM_LANDMARKS) -> None:
        if num_landmarks < 1:
            raise ValueError(
                f"num_landmarks must be >= 1, got {num_landmarks}"
            )
        self.num_landmarks = num_landmarks

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        # Seeded default: an rng-less call must still be reproducible
        rng = rng if rng is not None else np.random.default_rng(0)
        l = effective_num_landmarks(self.num_landmarks, m)
        landmarks = sample_landmarks(g1, l, rng)
        rows1 = landmark_rows(g1, landmarks, budget, "g1")
        rows2 = landmark_rows(g2, landmarks, budget, "g2")
        scores = landmark_delta_scores(g1, landmarks, rows1, rows2, self.norm)
        candidates = assemble_candidates(landmarks, scores, m)
        return SelectionResult(
            candidates=candidates,
            d1_rows={w: rows1[w] for w in landmarks},
            d2_rows={w: rows2[w] for w in landmarks},
        )


@register_selector("SumDiff")
class SumDiffSelector(_RandomLandmarkSelector):
    """L1-norm landmark selector — approximates greedy-cover sampling."""

    norm = "l1"


@register_selector("MaxDiff")
class MaxDiffSelector(_RandomLandmarkSelector):
    """L∞-norm landmark selector — the sharpest single approach."""

    norm = "linf"
