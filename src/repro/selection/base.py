"""Candidate-selector interface, selection results, and the registry.

Every algorithm from Section 4 of the paper is a *candidate selector*: it
looks at the two snapshots and spends part of the SSSP budget to nominate
the ``m`` nodes most likely to cover the top-k converging pairs.  The
generic top-k algorithm (:func:`repro.core.algorithm.find_top_k_converging_pairs`)
then finishes the job identically for all of them.

Key contract points:

* ``select`` must perform **all** of its shortest-path work through
  :meth:`repro.core.budget.SPBudget.charge` with phase ``"generation"``.
* Selectors may return the distance rows they computed along the way
  (``d1_rows`` / ``d2_rows``) so the top-k phase doesn't pay twice — this
  is how dispersion-based selection achieves Table 1's ``m``-SSSP
  generation phase that doubles as the candidates' ``G_t1`` rows, and how
  hybrid selection turns its landmarks into free candidates.
* ``len(result.candidates) <= m`` and the *total* spend after the top-k
  phase is exactly ``2m``; the budget tests pin this down per selector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph

Node = Hashable
DistanceRow = Dict[Node, float]

#: Phase label selectors must use when charging generation-time SSSPs.
GENERATION_PHASE = "generation"
#: Phase label the generic algorithm uses for candidate SSSPs.
TOPK_PHASE = "topk"


@dataclass
class SelectionResult:
    """Output of a candidate selector.

    Attributes
    ----------
    candidates:
        The nominated nodes, in rank order (best first), all present in
        ``G_t1``.
    d1_rows / d2_rows:
        Distance rows (``{target: distance}``) already computed during
        generation, keyed by source node.  The top-k phase reuses them
        instead of recomputing (and recharging) the SSSP.
    """

    candidates: List[Node]
    d1_rows: Dict[Node, DistanceRow] = field(default_factory=dict)
    d2_rows: Dict[Node, DistanceRow] = field(default_factory=dict)


class CandidateSelector(ABC):
    """Base class for the paper's candidate-endpoint generation algorithms."""

    #: Registry name (the paper's algorithm name, e.g. ``"SumDiff"``).
    name: str = "abstract"

    @abstractmethod
    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        """Nominate up to ``m`` candidate endpoints.

        Parameters
        ----------
        g1, g2:
            The two snapshots, ``g1`` a subgraph of ``g2``.
        m:
            The budget parameter: the caller will afford ``2m`` SSSPs in
            total, so the selector must leave enough budget for two rows
            per returned candidate (minus whatever rows it caches).
        budget:
            The enforcing budget; all SSSPs must be charged to it.
        rng:
            Seeded generator for any randomised choice (landmark
            sampling).  Deterministic selectors ignore it.
        """

    @staticmethod
    def _check_m(m: int) -> None:
        if m < 1:
            raise ValueError(f"candidate budget m must be >= 1, got {m}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[..., CandidateSelector]] = {}


def register_selector(name: str) -> Callable:
    """Class decorator adding a selector to the global registry.

    The registered name is the paper's algorithm name; lookups are
    case-insensitive.
    """

    def decorator(cls):
        cls.name = name
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"selector {name!r} already registered")
        _REGISTRY[key] = cls
        return cls

    return decorator


def get_selector(name: str, **kwargs) -> CandidateSelector:
    """Instantiate a registered selector by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown selector {name!r}; known selectors: {known}")
    return _REGISTRY[key](**kwargs)


def available_selectors() -> List[str]:
    """Registered selector names, in registration order of the paper."""
    return [cls.name for cls in _REGISTRY.values()]


def rank_take(scores: Dict[Node, float], m: int) -> List[Node]:
    """Top-``m`` nodes by descending score with deterministic tie-breaks."""
    return sorted(scores, key=lambda u: (-scores[u], repr(u)))[:m]
