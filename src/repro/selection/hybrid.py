"""Hybrid dispersion-seeded landmark selection (Section 4.2.4).

Identical to the landmark selectors except that the ``l`` landmarks are
chosen by greedy dispersion on ``G_t1`` instead of uniformly at random.
The paper's two motivations both fall out of the accounting here:

1. *No wasted budget* — dispersion-selected landmarks are plausible
   converging-pair endpoints themselves (peripheral / spread-out nodes),
   so the ``2l`` landmark SSSPs also buy ``l`` useful candidates.
2. *Better sensors* — landmarks that cover different regions of the graph
   register distance collapses anywhere, whereas random landmarks cluster
   in the core.

Cost split (Table 1's "Hybrid" row): dispersion costs ``l`` SSSPs on
``G_t1`` whose rows double as the landmarks' t1 tables, plus ``l`` SSSPs
on ``G_t2`` — generation is ``2l`` total, the top-k phase pays
``2(m − l)`` for the remaining candidates, totalling exactly ``2m``.

Four concrete algorithms: {MaxMin, MaxAvg} landmark policy x
{SumDiff, MaxDiff} scoring norm = MMSD, MMMD, MASD, MAMD.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection.base import (
    CandidateSelector,
    SelectionResult,
    register_selector,
)
from repro.selection.dispersion import greedy_dispersion
from repro.selection.landmark import (
    DEFAULT_NUM_LANDMARKS,
    assemble_candidates,
    effective_num_landmarks,
    landmark_delta_scores,
    landmark_rows,
)


class _HybridSelector(CandidateSelector):
    """Shared select() for the four dispersion x norm combinations."""

    dispersion_mode: str = "min"
    norm: str = "l1"

    def __init__(self, num_landmarks: int = DEFAULT_NUM_LANDMARKS) -> None:
        if num_landmarks < 1:
            raise ValueError(
                f"num_landmarks must be >= 1, got {num_landmarks}"
            )
        self.num_landmarks = num_landmarks

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        # Seeded default: an rng-less call must still be reproducible
        rng = rng if rng is not None else np.random.default_rng(0)
        l = effective_num_landmarks(self.num_landmarks, m)
        # Dispersion greedy: l SSSPs on G_t1, rows kept.
        landmarks, rows1 = greedy_dispersion(
            g1, l, self.dispersion_mode, budget, rng
        )
        # Landmark rows on G_t2: l more SSSPs.
        rows2 = landmark_rows(g2, landmarks, budget, "g2")
        scores = landmark_delta_scores(g1, landmarks, rows1, rows2, self.norm)
        candidates = assemble_candidates(landmarks, scores, m)
        return SelectionResult(
            candidates=candidates, d1_rows=rows1, d2_rows=rows2
        )


@register_selector("MMSD")
class MMSDSelector(_HybridSelector):
    """MaxMin-SumDiff — the paper's overall best single-feature algorithm."""

    dispersion_mode = "min"
    norm = "l1"


@register_selector("MMMD")
class MMMDSelector(_HybridSelector):
    """MaxMin-MaxDiff."""

    dispersion_mode = "min"
    norm = "linf"


@register_selector("MASD")
class MASDSelector(_HybridSelector):
    """MaxAvg-SumDiff."""

    dispersion_mode = "avg"
    norm = "l1"


@register_selector("MAMD")
class MAMDSelector(_HybridSelector):
    """MaxAvg-MaxDiff."""

    dispersion_mode = "avg"
    norm = "linf"
