"""Oracle selectors — cheating upper bounds for evaluation plots.

These selectors peek at the ground truth (the pair graph ``G^p_k``) that
no real algorithm has access to.  They exist purely to draw the "best
possible" line in cost–coverage plots: the greedy max-coverage solution
over ``G^p_k`` is the yardstick every practical selector is measured
against (and the target the classifiers are trained to imitate).

They are *not* registered in the selector registry: requesting them must
be an explicit, visible act in experiment code.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.budget import SPBudget
from repro.core.cover import greedy_max_coverage
from repro.core.pairgraph import PairGraph
from repro.graph.graph import Graph
from repro.selection.base import CandidateSelector, SelectionResult


class GreedyCoverOracle(CandidateSelector):
    """Selects the greedy max-coverage nodes of the true pair graph.

    Parameters
    ----------
    pair_graph:
        The ground-truth ``G^p_k`` (from
        :func:`repro.core.pairs.top_k_converging_pairs` or the threshold
        variant).
    """

    name = "GreedyCoverOracle"

    def __init__(self, pair_graph: PairGraph) -> None:
        self.pair_graph = pair_graph

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        return SelectionResult(
            candidates=greedy_max_coverage(self.pair_graph, m)
        )
