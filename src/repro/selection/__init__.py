"""Candidate-endpoint selection algorithms (Section 4 of the paper).

Every algorithm of Table 4 is available here, under its paper name, via
:func:`get_selector`:

========== ===========================================================
Name       Description
========== ===========================================================
Degree     Largest ``deg_t1(u)``.
DegDiff    Largest ``deg_t2(u) − deg_t1(u)``.
DegRel     Largest ``(deg_t2(u) − deg_t1(u)) / deg_t1(u)``.
MaxMin     Greedy dispersion maximising the minimum pairwise distance.
MaxAvg     Greedy dispersion maximising the average pairwise distance.
SumDiff    Largest L1 landmark-delta norm, random landmarks.
MaxDiff    Largest L∞ landmark-delta norm, random landmarks.
MMSD       MaxMin landmarks + SumDiff scoring.
MMMD       MaxMin landmarks + MaxDiff scoring.
MASD       MaxAvg landmarks + SumDiff scoring.
MAMD       MaxAvg landmarks + MaxDiff scoring.
IncDeg     Active nodes by degree difference [14].
IncDeg2    Active nodes by raw t2 degree [14] (omitted from Table 5).
IncRecv    Active nodes by received-edge importance [14] (omitted).
IncBet     Active nodes by incident-edge betweenness increase [14].
CoordDiff  Orion-style embedding displacement (extension).
L-Classifier  Per-dataset logistic-regression selector (needs a model).
G-Classifier  Cross-dataset logistic-regression selector (needs a model).
========== ===========================================================

The unbudgeted Incidence originals and the greedy-cover oracle are
importable but deliberately unregistered.  ``CoordDiff`` — an Orion-style
coordinate-embedding selector, the extension the paper's related work
points at — is registered alongside the paper algorithms but excluded
from :data:`SINGLE_FEATURE_SELECTORS` (it is not part of Table 4).
"""

from repro.selection.base import (
    GENERATION_PHASE,
    TOPK_PHASE,
    CandidateSelector,
    SelectionResult,
    available_selectors,
    get_selector,
    rank_take,
    register_selector,
)
from repro.selection.centrality import (
    DegDiffSelector,
    DegreeSelector,
    DegRelSelector,
)
from repro.selection.dispersion import (
    MaxAvgSelector,
    MaxMinSelector,
    greedy_dispersion,
)
from repro.selection.landmark import (
    DEFAULT_NUM_LANDMARKS,
    MaxDiffSelector,
    SumDiffSelector,
    sample_landmarks,
)
from repro.selection.hybrid import (
    MAMDSelector,
    MASDSelector,
    MMMDSelector,
    MMSDSelector,
)
from repro.selection.incidence import (
    IncBetSelector,
    IncDeg2Selector,
    IncDegSelector,
    IncidenceResult,
    IncRecvSelector,
    active_nodes,
    new_edges,
    run_incidence_algorithm,
    run_selective_expansion,
)
from repro.selection.classifier import (
    GlobalClassifierSelector,
    LocalClassifierSelector,
)
from repro.selection.embedding import CoordDiffSelector, classical_mds, trilaterate
from repro.selection.oracle import GreedyCoverOracle

#: The twelve single-feature algorithms of Table 5, in the paper's order.
SINGLE_FEATURE_SELECTORS = (
    "Degree",
    "DegDiff",
    "DegRel",
    "MaxMin",
    "MaxAvg",
    "SumDiff",
    "MaxDiff",
    "MMSD",
    "MMMD",
    "MASD",
    "MAMD",
    "IncDeg",
    "IncBet",
)

__all__ = [
    "GENERATION_PHASE",
    "TOPK_PHASE",
    "CandidateSelector",
    "SelectionResult",
    "available_selectors",
    "get_selector",
    "rank_take",
    "register_selector",
    "DegreeSelector",
    "DegDiffSelector",
    "DegRelSelector",
    "MaxMinSelector",
    "MaxAvgSelector",
    "greedy_dispersion",
    "DEFAULT_NUM_LANDMARKS",
    "SumDiffSelector",
    "MaxDiffSelector",
    "sample_landmarks",
    "MMSDSelector",
    "MMMDSelector",
    "MASDSelector",
    "MAMDSelector",
    "IncDegSelector",
    "IncDeg2Selector",
    "IncRecvSelector",
    "IncBetSelector",
    "IncidenceResult",
    "active_nodes",
    "new_edges",
    "run_incidence_algorithm",
    "run_selective_expansion",
    "LocalClassifierSelector",
    "GlobalClassifierSelector",
    "CoordDiffSelector",
    "classical_mds",
    "trilaterate",
    "GreedyCoverOracle",
    "SINGLE_FEATURE_SELECTORS",
]
