"""Coordinate-embedding candidate selection (beyond-paper extension).

Section 2 of the paper points at Orion [25] — which embeds a graph into a
low-dimensional Euclidean space from landmark distances — as an
"interesting to consider" landmark-selection direction it leaves out of
scope.  This module builds that extension on the same budget accounting
as the landmark family:

1. pick ``l`` landmarks (dispersion-seeded by default, like the hybrids);
2. embed the landmarks by classical multidimensional scaling (MDS) on
   their pairwise ``G_t1`` distances;
3. place every node in both snapshots by least-squares trilateration
   against its landmark distance vectors;
4. rank nodes by the Euclidean *displacement* of their position between
   the two embeddings — a node whose coordinates jumped moved closer to
   some region of the graph.

Cost: identical to the hybrid selectors — ``l`` SSSPs on ``G_t1`` (rows
reused) plus ``l`` on ``G_t2``, i.e. a ``2l`` generation phase, with the
landmarks riding along as free candidates.  The ablation benchmark
compares it against SumDiff; on the catalog datasets displacement is a
weaker signal than the L1 delta norm, which is consistent with the
paper's choice to rank on raw distance changes.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection.base import (
    CandidateSelector,
    SelectionResult,
    register_selector,
)
from repro.selection.dispersion import greedy_dispersion
from repro.selection.landmark import (
    DEFAULT_NUM_LANDMARKS,
    assemble_candidates,
    effective_num_landmarks,
    landmark_rows,
)

Node = Hashable
DistanceRow = Dict[Node, float]


def classical_mds(
    distances: np.ndarray, dimensions: int
) -> np.ndarray:
    """Embed points from a squared-distance-friendly matrix via MDS.

    Classical (Torgerson) multidimensional scaling: double-center the
    squared distance matrix and take the top eigenpairs.  Returns an
    ``(n, dimensions)`` coordinate array; dimensions beyond the matrix
    rank come out as zero columns.
    """
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ValueError(f"distance matrix must be square, got {distances.shape}")
    if dimensions < 1:
        raise ValueError(f"dimensions must be >= 1, got {dimensions}")
    sq = np.square(distances, dtype=float)
    centering = np.eye(n) - np.full((n, n), 1.0 / n)
    gram = -0.5 * centering @ sq @ centering
    eigvals, eigvecs = np.linalg.eigh(gram)
    order = np.argsort(eigvals)[::-1][:dimensions]
    coords = eigvecs[:, order] * np.sqrt(np.maximum(eigvals[order], 0.0))
    if coords.shape[1] < dimensions:  # pragma: no cover - defensive
        pad = np.zeros((n, dimensions - coords.shape[1]))
        coords = np.hstack([coords, pad])
    return coords


def trilaterate(
    landmark_coords: np.ndarray, distances: np.ndarray
) -> np.ndarray:
    """Least-squares position of a point from landmark distances.

    Linearises the system ``||x - L_i||² = d_i²`` by subtracting the
    first landmark's equation (the standard trilateration trick) and
    solves the resulting linear least squares.  With fewer than
    ``dimensions + 1`` finite distances the point is placed at the
    centroid of the reachable landmarks (graceful degradation for
    fringe-component nodes).
    """
    finite = np.isfinite(distances)
    coords = landmark_coords[finite]
    dists = distances[finite]
    dims = landmark_coords.shape[1]
    if coords.shape[0] < dims + 1:
        if coords.shape[0] == 0:
            return np.zeros(dims)
        return coords.mean(axis=0)
    ref, dref = coords[0], dists[0]
    a = 2.0 * (coords[1:] - ref)
    b = (
        np.square(dref)
        - np.square(dists[1:])
        + np.sum(np.square(coords[1:]), axis=1)
        - np.sum(np.square(ref))
    )
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    return solution


@register_selector("CoordDiff")
class CoordDiffSelector(CandidateSelector):
    """Rank nodes by embedded-coordinate displacement between snapshots.

    Parameters
    ----------
    num_landmarks:
        Landmark count l (paper default 10; clamped to the budget).
    dimensions:
        Embedding dimensionality (Orion uses a handful; default 4).
    landmark_policy:
        ``"maxmin"`` (default), ``"maxavg"``, or ``"random"`` seeding.
    """

    def __init__(
        self,
        num_landmarks: int = DEFAULT_NUM_LANDMARKS,
        dimensions: int = 4,
        landmark_policy: str = "maxmin",
    ) -> None:
        if num_landmarks < 1:
            raise ValueError(f"num_landmarks must be >= 1, got {num_landmarks}")
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {dimensions}")
        if landmark_policy not in ("maxmin", "maxavg", "random"):
            raise ValueError(
                f"landmark_policy must be maxmin/maxavg/random, "
                f"got {landmark_policy!r}"
            )
        self.num_landmarks = num_landmarks
        self.dimensions = dimensions
        self.landmark_policy = landmark_policy

    def _pick_landmarks(
        self,
        g1: Graph,
        l: int,
        budget: SPBudget,
        rng: np.random.Generator,
    ) -> Tuple[List[Node], Dict[Node, DistanceRow]]:
        if self.landmark_policy == "random":
            from repro.selection.landmark import sample_landmarks

            landmarks = sample_landmarks(g1, l, rng)
            rows1 = landmark_rows(g1, landmarks, budget, "g1")
            return landmarks, rows1
        mode = "min" if self.landmark_policy == "maxmin" else "avg"
        return greedy_dispersion(g1, l, mode, budget, rng)

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        # Seeded default: an rng-less call must still be reproducible
        rng = rng if rng is not None else np.random.default_rng(0)
        l = effective_num_landmarks(self.num_landmarks, m)
        landmarks, rows1 = self._pick_landmarks(g1, l, budget, rng)
        rows2 = landmark_rows(g2, landmarks, budget, "g2")

        # Landmark skeleton from t1 pairwise distances (rows1 contains
        # every landmark-to-landmark distance already).
        far = float(g1.num_nodes)
        skeleton = np.full((l, l), far)
        for i, wi in enumerate(landmarks):
            for j, wj in enumerate(landmarks):
                d = rows1[wi].get(wj)
                if d is not None:
                    skeleton[i, j] = d
        np.fill_diagonal(skeleton, 0.0)
        dims = min(self.dimensions, max(1, l - 1))
        landmark_coords = classical_mds(skeleton, dims)

        # Per-node displacement between the two trilaterated positions.
        nodes = list(g1.nodes())
        scores: Dict[Node, float] = {}
        vec1 = np.empty(l)
        vec2 = np.empty(l)
        for u in nodes:
            for j, w in enumerate(landmarks):
                vec1[j] = rows1[w].get(u, np.inf)
                vec2[j] = rows2[w].get(u, np.inf)
            p1 = trilaterate(landmark_coords, vec1)
            p2 = trilaterate(landmark_coords, vec2)
            scores[u] = float(np.linalg.norm(p1 - p2))

        candidates = assemble_candidates(landmarks, scores, m)
        return SelectionResult(
            candidates=candidates, d1_rows=rows1, d2_rows=rows2
        )
