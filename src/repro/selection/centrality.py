"""Centrality-based candidate selection (Section 4.2.1).

Degree is the cheapest centrality signal: these selectors spend **zero**
SSSPs on generation (Table 1's "Degree-based" row), leaving the whole
``2m`` budget to the top-k phase.

The paper's empirical finding — reproduced by our benchmarks — is that
raw degree is close to useless (high-degree nodes are already central, so
their paths were already short), degree difference inherits the same flaw
through preferential attachment, and only the *relative* degree change is
competitive, and then mostly on dense Actors-like graphs where the top
converging pairs collapse to single new edges.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection.base import (
    CandidateSelector,
    SelectionResult,
    rank_take,
    register_selector,
)

Node = Hashable


class _DegreeScoreSelector(CandidateSelector):
    """Shared machinery: rank ``G_t1`` nodes by a degree-derived score."""

    def _score(self, deg1: int, deg2: int) -> float:
        raise NotImplementedError

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        scores: Dict[Node, float] = {
            u: self._score(g1.degree(u), g2.degree(u)) for u in g1.nodes()
        }
        return SelectionResult(candidates=rank_take(scores, m))


@register_selector("Degree")
class DegreeSelector(_DegreeScoreSelector):
    """Rank by degree in the first snapshot: ``deg_t1(u)``."""

    def _score(self, deg1: int, deg2: int) -> float:
        return float(deg1)


@register_selector("DegDiff")
class DegDiffSelector(_DegreeScoreSelector):
    """Rank by absolute degree growth: ``deg_t2(u) − deg_t1(u)``."""

    def _score(self, deg1: int, deg2: int) -> float:
        return float(deg2 - deg1)


@register_selector("DegRel")
class DegRelSelector(_DegreeScoreSelector):
    """Rank by relative degree growth: ``(deg_t2(u) − deg_t1(u)) / deg_t1(u)``.

    Nodes isolated at t1 (degree 0 — possible only through explicit
    ``add_node``) are scored with denominator 1 so the ratio stays finite.
    """

    def _score(self, deg1: int, deg2: int) -> float:
        return (deg2 - deg1) / max(deg1, 1)
