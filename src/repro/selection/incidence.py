"""The Incidence family of baselines (Section 4.2.6, from [14]).

The prior work the paper compares against centres on the **active nodes**
``A``: the ``G_t1`` nodes that received new edges in the second snapshot.
(New nodes that did not exist at t1 are excluded — they cannot be an
endpoint of a pair connected at t1.)

Three levels of the baseline are provided:

* Budgeted rankers (Table 4/5): :class:`IncDegSelector` and
  :class:`IncBetSelector` keep only the ``m`` best active nodes by degree
  difference or by the increase in total betweenness of their incident
  edges.  Per the paper's setup the betweenness here is the **exact** edge
  betweenness ("giving an advantage to the Incidence algorithm") — its
  cost is *not* charged to the SSSP budget.
* The original unbudgeted :func:`run_incidence_algorithm` (Table 6):
  computes shortest paths from *every* active node, achieving near-total
  coverage at a cost of ``2|A|`` SSSPs, with ``|A|`` typically a double-
  digit percentage of the whole graph.
* :func:`run_selective_expansion`: the iterative variant that grows ``A``
  with neighbors carrying important (high-betweenness) edges until no new
  pairs are discovered.  The paper found it prohibitively expensive and
  did not evaluate it; we implement a bounded version for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.core.budget import SPBudget
from repro.core.pairs import ConvergingPair, canonical_pair
from repro.graph.betweenness import approximate_edge_betweenness, edge_betweenness
from repro.graph.graph import Graph
from repro.graph.traversal import single_source_distances
from repro.selection.base import (
    CandidateSelector,
    SelectionResult,
    rank_take,
    register_selector,
)

Node = Hashable


def new_edges(g1: Graph, g2: Graph) -> List[Tuple[Node, Node]]:
    """The edges of ``G_t2`` absent from ``G_t1`` (canonical tuples)."""
    return [
        canonical_pair(u, v) for u, v in g2.edges() if not g1.has_edge(u, v)
    ]


def active_nodes(g1: Graph, g2: Graph) -> Set[Node]:
    """Nodes of ``G_t1`` incident to at least one new edge."""
    active: Set[Node] = set()
    for u, v in new_edges(g1, g2):
        if u in g1:
            active.add(u)
        if v in g1:
            active.add(v)
    return active


def _edge_bc(
    graph: Graph, pivots: Optional[int], rng: Optional[np.random.Generator]
) -> Dict[Tuple[Node, Node], float]:
    if pivots is None:
        return edge_betweenness(graph, normalized=False)
    return approximate_edge_betweenness(
        graph, num_pivots=pivots, rng=rng, normalized=False
    )


def incident_betweenness_increase(
    g1: Graph,
    g2: Graph,
    pivots: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Dict[Node, float]:
    """Per-node increase in the total betweenness of incident edges.

    ``score(u) = Σ_{e ∋ u, e ∈ E_t2} bc_t2(e) − Σ_{e ∋ u, e ∈ E_t1} bc_t1(e)``.
    With ``pivots=None`` the betweenness is exact (the paper's setting);
    otherwise the sampled-pivot estimator of [14] is used.
    """
    bc1 = _edge_bc(g1, pivots, rng)
    bc2 = _edge_bc(g2, pivots, rng)
    scores: Dict[Node, float] = {u: 0.0 for u in g1.nodes()}
    for (u, v), b in bc2.items():
        if u in scores:
            scores[u] += b
        if v in scores:
            scores[v] += b
    for (u, v), b in bc1.items():
        if u in scores:
            scores[u] -= b
        if v in scores:
            scores[v] -= b
    return scores


@register_selector("IncDeg")
class IncDegSelector(CandidateSelector):
    """Active nodes ranked by degree difference ``deg_t2 − deg_t1`` [14]."""

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        scores = {
            u: float(g2.degree(u) - g1.degree(u)) for u in active_nodes(g1, g2)
        }
        return SelectionResult(candidates=rank_take(scores, m))


@register_selector("IncBet")
class IncBetSelector(CandidateSelector):
    """Active nodes ranked by incident-edge betweenness increase [14].

    Parameters
    ----------
    pivots:
        ``None`` (default) computes exact edge betweenness — the paper's
        evaluation setting.  A positive integer switches to the sampled
        shortest-path-tree estimator the original work proposed, which the
        ablation benchmark exercises.
    """

    def __init__(
        self,
        pivots: Optional[int] = None,
        precomputed_scores: Optional[Dict[Node, float]] = None,
    ) -> None:
        if pivots is not None and pivots < 1:
            raise ValueError(f"pivots must be None or >= 1, got {pivots}")
        self.pivots = pivots
        # Betweenness is granted free to this baseline, so callers running
        # many configurations may precompute the per-node increase once
        # (see DatasetContext.incident_bet_scores) instead of paying the
        # Brandes pass on every select().
        self.precomputed_scores = precomputed_scores

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        if self.precomputed_scores is not None:
            increase = self.precomputed_scores
        else:
            increase = incident_betweenness_increase(g1, g2, self.pivots, rng)
        active = active_nodes(g1, g2)
        scores = {u: increase.get(u, 0.0) for u in active}
        return SelectionResult(candidates=rank_take(scores, m))


@register_selector("IncDeg2")
class IncDeg2Selector(CandidateSelector):
    """Active nodes ranked by their raw degree in ``G_t2``.

    The first of the four rank policies [14] proposes ("their degree in
    G_t2"); the paper's Table 5 reports only the best degree-based policy
    (IncDeg), so this one ships for completeness of the baseline family.
    """

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        scores = {u: float(g2.degree(u)) for u in active_nodes(g1, g2)}
        return SelectionResult(candidates=rank_take(scores, m))


@register_selector("IncRecv")
class IncRecvSelector(CandidateSelector):
    """Active nodes ranked by total importance of their *received* edges.

    The third rank policy of [14]: the sum of the (edge-betweenness)
    importance of the new edges a node received in ``G_t2``.  Unlike
    :class:`IncBetSelector` it looks only at the received edges, not the
    node's whole incident set.  Betweenness fidelity follows the same
    ``pivots`` convention (``None`` = exact, the paper's grant).
    """

    def __init__(
        self,
        pivots: Optional[int] = None,
        precomputed_edge_bc: Optional[Dict[Tuple[Node, Node], float]] = None,
    ) -> None:
        if pivots is not None and pivots < 1:
            raise ValueError(f"pivots must be None or >= 1, got {pivots}")
        self.pivots = pivots
        self.precomputed_edge_bc = precomputed_edge_bc

    def select(
        self,
        g1: Graph,
        g2: Graph,
        m: int,
        budget: SPBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> SelectionResult:
        self._check_m(m)
        bc2 = (
            self.precomputed_edge_bc
            if self.precomputed_edge_bc is not None
            else _edge_bc(g2, self.pivots, rng)
        )
        scores: Dict[Node, float] = {u: 0.0 for u in active_nodes(g1, g2)}
        for u, v in new_edges(g1, g2):
            importance = bc2.get((u, v), 0.0)
            if u in scores:
                scores[u] += importance
            if v in scores:
                scores[v] += importance
        return SelectionResult(candidates=rank_take(scores, m))


# ----------------------------------------------------------------------
# Unbudgeted originals
# ----------------------------------------------------------------------
@dataclass
class IncidenceResult:
    """Outcome of the unbudgeted Incidence algorithm.

    Attributes
    ----------
    pairs:
        Top-k converging pairs found from the active set.
    active:
        The active nodes used as sources.
    sp_computations:
        Total SSSPs performed (``2 |active|``) — the cost Table 6
        contrasts with the budgeted approaches.
    rounds:
        Expansion rounds executed (1 for the plain algorithm).
    """

    pairs: List[ConvergingPair]
    active: List[Node]
    sp_computations: int
    rounds: int = 1

    @property
    def active_fraction_of(self) -> float:  # pragma: no cover - alias
        raise AttributeError("use active_fraction(g1) instead")

    def active_fraction(self, g1: Graph) -> float:
        """``|A| / |V_t1|`` — the baseline's effective budget share."""
        if g1.num_nodes == 0:
            return 0.0
        return len(self.active) / g1.num_nodes


def _pairs_from_sources(
    g1: Graph, g2: Graph, sources: List[Node], k: int, budget: SPBudget
) -> List[ConvergingPair]:
    scored: Dict[tuple, ConvergingPair] = {}
    for c in sources:
        budget.charge("topk", "g1", 1)
        d1 = single_source_distances(g1, c)
        budget.charge("topk", "g2", 1)
        d2 = single_source_distances(g2, c)
        for v, dv1 in d1.items():
            if v == c:
                continue
            delta = dv1 - d2[v]
            if delta <= 0:
                continue
            key = canonical_pair(c, v)
            if key not in scored:
                scored[key] = ConvergingPair(key[0], key[1], dv1, d2[v])
    return sorted(scored.values(), key=ConvergingPair.sort_key)[:k]


def run_incidence_algorithm(g1: Graph, g2: Graph, k: int) -> IncidenceResult:
    """The original budget-free Incidence algorithm of [14] (Table 6).

    Computes SSSPs from *all* active nodes on both snapshots and returns
    the k pairs with the largest distance decrease.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    active = sorted(active_nodes(g1, g2), key=repr)
    budget = SPBudget(None)
    pairs = _pairs_from_sources(g1, g2, active, k, budget)
    return IncidenceResult(
        pairs=pairs, active=active, sp_computations=budget.spent
    )


def run_selective_expansion(
    g1: Graph,
    g2: Graph,
    k: int,
    expansion_per_round: int = 50,
    max_rounds: int = 10,
    pivots: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> IncidenceResult:
    """Selective Expansion [14]: grow the active set towards new pairs.

    Each round, the neighbors of the endpoints of the currently found
    pairs are scored by the total (t2) betweenness of their incident
    edges — their "important edges" — and the best
    ``expansion_per_round`` join the source set.  Iteration stops when a
    round discovers no new pairs or after ``max_rounds``.

    The paper skipped this variant for cost reasons; the bounded version
    here exists so downstream users can reproduce the comparison at
    whatever scale they can afford.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if expansion_per_round < 1:
        raise ValueError(
            f"expansion_per_round must be >= 1, got {expansion_per_round}"
        )
    bc2 = _edge_bc(g2, pivots, rng)
    importance: Dict[Node, float] = {}
    for (u, v), b in bc2.items():
        importance[u] = importance.get(u, 0.0) + b
        importance[v] = importance.get(v, 0.0) + b

    sources = sorted(active_nodes(g1, g2), key=repr)
    in_sources = set(sources)
    budget = SPBudget(None)
    pairs = _pairs_from_sources(g1, g2, sources, k, budget)
    rounds = 1
    while rounds < max_rounds:
        frontier: Dict[Node, float] = {}
        for p in pairs:
            for endpoint in (p.u, p.v):
                if endpoint not in g1:
                    continue
                for nbr in g1.neighbors(endpoint):
                    if nbr not in in_sources:
                        frontier[nbr] = importance.get(nbr, 0.0)
        if not frontier:
            break
        newcomers = rank_take(frontier, expansion_per_round)
        sources.extend(newcomers)
        in_sources.update(newcomers)
        new_pairs = _pairs_from_sources(g1, g2, sources, k, budget)
        rounds += 1
        if {p.pair for p in new_pairs} == {p.pair for p in pairs}:
            pairs = new_pairs
            break
        pairs = new_pairs
    return IncidenceResult(
        pairs=pairs,
        active=sources,
        sp_computations=budget.spent,
        rounds=rounds,
    )
