"""Training pipelines for the local and global classifiers (Section 5.3).

The trick that makes the classifiers work is the paper's definition of a
*good endpoint*: membership in the **greedy vertex cover** of the pair
graph.  Training therefore needs ground truth, which is why it runs on an
*earlier, cheaper* snapshot pair — 20% and 40% of the edge stream — while
evaluation uses the disjoint 80%/100% pair.

* **Local classifier** (``L-Classifier``): one model per dataset, node
  features only.
* **Global classifier** (``G-Classifier``): one model trained on all
  datasets pooled *in equal proportions*, with the four graph-level
  features appended so it can adapt to unseen graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cover import greedy_vertex_cover
from repro.core.pairgraph import PairGraph
from repro.core.pairs import converging_pairs_at_threshold, delta_histogram
from repro.graph.dynamic import TemporalGraph
from repro.graph.graph import Graph
from repro.ml.features import (
    GRAPH_FEATURE_NAMES,
    NODE_FEATURE_NAMES,
    append_graph_features,
    extract_node_features,
    graph_level_features,
)
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import MinMaxScaler

Node = Hashable

#: The paper's training split: snapshots at 20% and 40% of the edges.
TRAIN_SPLIT = (0.2, 0.4)


@dataclass
class TrainedModel:
    """A fitted classifier bundle, ready to drive a selector.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.ml.logistic.LogisticRegression`.
    scaler:
        The [-1, 1] scaler fitted on the training pool.
    feature_names:
        Column names, for introspection/debugging.
    uses_graph_features:
        True for the global model (expects 14 columns, not 10).
    num_landmarks:
        The landmark count l used during feature extraction; selection
        reuses it (clamped to the test-time budget).
    positive_fraction:
        Share of positive labels in the training pool (diagnostics).
    """

    model: LogisticRegression
    scaler: MinMaxScaler
    feature_names: Tuple[str, ...]
    uses_graph_features: bool
    num_landmarks: int
    positive_fraction: float

    def score_nodes(self, matrix: np.ndarray) -> np.ndarray:
        """Cover-membership probability for raw (unscaled) feature rows."""
        return self.model.predict_proba(self.scaler.transform(matrix))


def training_delta_threshold(
    g1: Graph, g2: Graph, delta_offset: int
) -> Optional[float]:
    """The δ threshold ``Δmax − delta_offset`` on a snapshot pair.

    Returns ``None`` when no pair converges at all (degenerate streams),
    and clamps the threshold at 1 so the positive class is never "every
    pair".
    """
    hist = delta_histogram(g1, g2)
    positive = [d for d in hist if d > 0]
    if not positive:
        return None
    return max(1.0, max(positive) - delta_offset)


def build_training_examples(
    temporal: TemporalGraph,
    delta_offset: int = 1,
    num_landmarks: int = 10,
    seed: Optional[int] = None,
    split: Tuple[float, float] = TRAIN_SPLIT,
) -> Tuple[np.ndarray, np.ndarray, Graph, Graph]:
    """Features and cover labels from a dataset's training snapshot pair.

    Returns ``(X, y, g1_train, g2_train)`` where ``X`` holds the 10 raw
    node features for every node of the training ``G_t1`` and ``y`` marks
    greedy-cover membership at δ = Δmax − ``delta_offset``.
    """
    g1, g2 = temporal.snapshot_pair(*split)
    rng = np.random.default_rng(seed)
    feats = extract_node_features(g1, g2, num_landmarks, rng)

    threshold = training_delta_threshold(g1, g2, delta_offset)
    if threshold is None:
        labels = np.zeros(len(feats.nodes), dtype=float)
        return feats.matrix, labels, g1, g2
    pairs = converging_pairs_at_threshold(g1, g2, threshold)
    cover = set(greedy_vertex_cover(PairGraph(pairs)))
    labels = np.array(
        [1.0 if u in cover else 0.0 for u in feats.nodes], dtype=float
    )
    return feats.matrix, labels, g1, g2


def train_local_classifier(
    temporal: TemporalGraph,
    delta_offset: int = 1,
    num_landmarks: int = 10,
    seed: Optional[int] = None,
    l2: float = 1.0,
) -> TrainedModel:
    """Fit the per-dataset L-Classifier on the 20%/40% training pair."""
    X, y, _, _ = build_training_examples(
        temporal, delta_offset, num_landmarks, seed
    )
    scaler = MinMaxScaler()
    Xs = scaler.fit_transform(X)
    model = LogisticRegression(l2=l2).fit(Xs, y)
    return TrainedModel(
        model=model,
        scaler=scaler,
        feature_names=NODE_FEATURE_NAMES,
        uses_graph_features=False,
        num_landmarks=num_landmarks,
        positive_fraction=float(y.mean()),
    )


def train_global_classifier(
    temporals: Dict[str, TemporalGraph],
    delta_offset: int = 1,
    num_landmarks: int = 10,
    seed: Optional[int] = None,
    l2: float = 1.0,
) -> TrainedModel:
    """Fit the cross-dataset G-Classifier.

    Each dataset contributes its training pair's node rows, extended with
    that pair's graph-level features; datasets are then subsampled to
    **equal proportions** (the size of the smallest one) before fitting,
    as in the paper.
    """
    if not temporals:
        raise ValueError("need at least one dataset to train on")
    rng = np.random.default_rng(seed)
    per_dataset: List[Tuple[np.ndarray, np.ndarray]] = []
    for name in sorted(temporals):
        X, y, g1, g2 = build_training_examples(
            temporals[name], delta_offset, num_landmarks,
            seed=int(rng.integers(2**31)),
        )
        Xg = append_graph_features(X, graph_level_features(g1, g2))
        per_dataset.append((Xg, y))

    smallest = min(X.shape[0] for X, _ in per_dataset)
    pooled_X: List[np.ndarray] = []
    pooled_y: List[np.ndarray] = []
    for X, y in per_dataset:
        if X.shape[0] > smallest:
            # Keep every positive example (they are scarce) and fill the
            # remainder with a random sample of negatives.
            pos_idx = np.flatnonzero(y > 0.5)
            neg_idx = np.flatnonzero(y <= 0.5)
            keep_pos = pos_idx[:smallest]
            room = smallest - keep_pos.size
            keep_neg = rng.choice(neg_idx, size=room, replace=False)
            keep = np.concatenate([keep_pos, keep_neg])
            X, y = X[keep], y[keep]
        pooled_X.append(X)
        pooled_y.append(y)

    X_all = np.vstack(pooled_X)
    y_all = np.concatenate(pooled_y)
    scaler = MinMaxScaler()
    Xs = scaler.fit_transform(X_all)
    model = LogisticRegression(l2=l2).fit(Xs, y_all)
    return TrainedModel(
        model=model,
        scaler=scaler,
        feature_names=NODE_FEATURE_NAMES + GRAPH_FEATURE_NAMES,
        uses_graph_features=True,
        num_landmarks=num_landmarks,
        positive_fraction=float(y_all.mean()),
    )
