"""Feature scaling to the paper's [-1, 1] interval.

"All features are normalised in the interval [-1, 1]" — a plain min-max
affine map fitted on the training pool and reapplied verbatim at test
time.  Constant columns map to 0 (no information, no division by zero);
test-time values outside the training range extrapolate linearly, which
preserves the ranking the selectors rely on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class MinMaxScaler:
    """Affine per-feature scaler onto a fixed range (default [-1, 1]).

    Examples
    --------
    >>> scaler = MinMaxScaler()
    >>> X = np.array([[0.0, 5.0], [10.0, 5.0]])
    >>> scaler.fit_transform(X)
    array([[-1.,  0.],
           [ 1.,  0.]])
    """

    def __init__(self, feature_range: Tuple[float, float] = (-1.0, 1.0)) -> None:
        lo, hi = feature_range
        if lo >= hi:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Record per-column minima/maxima of the training matrix."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty matrix")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map columns onto the target range using the fitted extrema."""
        if self.data_min_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self.data_min_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} columns; scaler was fitted on "
                f"{self.data_min_.shape[0]}"
            )
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span == 0, 1.0, span)
        unit = (X - self.data_min_) / safe_span
        scaled = lo + unit * (hi - lo)
        midpoint = (lo + hi) / 2.0
        return np.where(span == 0, midpoint, scaled)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """:meth:`fit` then :meth:`transform` in one call."""
        return self.fit(X).transform(X)
