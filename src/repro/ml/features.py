"""Feature extraction for the classification-based selectors.

Per-node features (Section 5.3): the degree of the node in both snapshots,
the degree difference and relative difference, and the L1 / L∞ norms of
the landmark-delta vector for **three** landmark policies — random,
MaxMin-dispersed, and MaxAvg-dispersed.  Ten features total, independent
of the landmark count l (the norms collapse the l-vector).

Graph-level features for the global classifier: density and maximum
degree of both snapshots — four constants appended to every node row of
that graph.

Cost: building the three landmark tables takes ``3 · 2l`` SSSPs, the
``3·2l`` setup charge Table 1 lists for the classification approach.
When extraction runs inside a budgeted selection the caller passes the
live budget; offline training passes an unlimited one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection.base import GENERATION_PHASE
from repro.selection.dispersion import greedy_dispersion
from repro.selection.landmark import (
    landmark_delta_scores,
    landmark_rows,
    sample_landmarks,
)

Node = Hashable
DistanceRow = Dict[Node, float]

#: Node-level feature names, in column order.
NODE_FEATURE_NAMES = (
    "deg_t1",
    "deg_t2",
    "deg_diff",
    "deg_rel",
    "rnd_l1",
    "rnd_linf",
    "maxmin_l1",
    "maxmin_linf",
    "maxavg_l1",
    "maxavg_linf",
)

#: Graph-level feature names appended by the global classifier.
GRAPH_FEATURE_NAMES = (
    "density_t1",
    "density_t2",
    "max_degree_t1",
    "max_degree_t2",
)


@dataclass
class FeatureResult:
    """Node features plus the landmark bookkeeping a selector can reuse.

    Attributes
    ----------
    nodes:
        Row order of :attr:`matrix` (all nodes of ``G_t1``).
    matrix:
        Raw (unscaled) feature matrix, shape ``(len(nodes), 10)``.
    landmark_nodes:
        All 3l landmark nodes, random + MaxMin + MaxAvg in that order
        (duplicates possible across policies; preserved in order, deduped).
    d1_rows / d2_rows:
        Cached SSSP rows of every landmark in each snapshot.
    """

    nodes: List[Node]
    matrix: np.ndarray
    landmark_nodes: List[Node]
    d1_rows: Dict[Node, DistanceRow]
    d2_rows: Dict[Node, DistanceRow]


def extract_node_features(
    g1: Graph,
    g2: Graph,
    num_landmarks: int,
    rng: np.random.Generator,
    budget: Optional[SPBudget] = None,
    phase: str = GENERATION_PHASE,
) -> FeatureResult:
    """Compute the 10 node features for every node of ``G_t1``.

    Charges ``6 * num_landmarks`` SSSPs to ``budget`` (an unlimited budget
    is created when ``None`` — the offline-training path).
    """
    if num_landmarks < 1:
        raise ValueError(f"num_landmarks must be >= 1, got {num_landmarks}")
    budget = budget if budget is not None else SPBudget(None)
    nodes = list(g1.nodes())

    d1_rows: Dict[Node, DistanceRow] = {}
    d2_rows: Dict[Node, DistanceRow] = {}
    landmark_nodes: List[Node] = []
    per_policy_scores = {}

    # Random landmarks: l SSSPs on each snapshot.
    rnd = sample_landmarks(g1, num_landmarks, rng)
    rnd_rows1 = landmark_rows(g1, rnd, budget, "g1", phase)
    rnd_rows2 = landmark_rows(g2, rnd, budget, "g2", phase)
    per_policy_scores["rnd"] = (rnd, rnd_rows1, rnd_rows2)

    # Dispersion landmarks: the greedy's G_t1 rows double as the table.
    for key, mode in (("maxmin", "min"), ("maxavg", "avg")):
        picks, rows1 = greedy_dispersion(
            g1, num_landmarks, mode, budget, rng, phase=phase
        )
        rows2 = landmark_rows(g2, picks, budget, "g2", phase)
        per_policy_scores[key] = (picks, rows1, rows2)

    columns: Dict[str, Dict[Node, float]] = {}
    for key, (picks, rows1, rows2) in per_policy_scores.items():
        columns[f"{key}_l1"] = landmark_delta_scores(g1, picks, rows1, rows2, "l1")
        columns[f"{key}_linf"] = landmark_delta_scores(
            g1, picks, rows1, rows2, "linf"
        )
        for w in picks:
            if w not in d1_rows:
                landmark_nodes.append(w)
            d1_rows[w] = rows1[w]
            d2_rows[w] = rows2[w]

    matrix = np.zeros((len(nodes), len(NODE_FEATURE_NAMES)), dtype=float)
    for i, u in enumerate(nodes):
        deg1 = g1.degree(u)
        deg2 = g2.degree(u)
        matrix[i, 0] = deg1
        matrix[i, 1] = deg2
        matrix[i, 2] = deg2 - deg1
        matrix[i, 3] = (deg2 - deg1) / max(deg1, 1)
        matrix[i, 4] = columns["rnd_l1"][u]
        matrix[i, 5] = columns["rnd_linf"][u]
        matrix[i, 6] = columns["maxmin_l1"][u]
        matrix[i, 7] = columns["maxmin_linf"][u]
        matrix[i, 8] = columns["maxavg_l1"][u]
        matrix[i, 9] = columns["maxavg_linf"][u]

    return FeatureResult(
        nodes=nodes,
        matrix=matrix,
        landmark_nodes=landmark_nodes,
        d1_rows=d1_rows,
        d2_rows=d2_rows,
    )


def graph_level_features(g1: Graph, g2: Graph) -> np.ndarray:
    """The four dataset-characteristic features of the global classifier."""
    return np.array(
        [
            g1.density(),
            g2.density(),
            float(g1.max_degree()),
            float(g2.max_degree()),
        ],
        dtype=float,
    )


def append_graph_features(matrix: np.ndarray, graph_feats: np.ndarray) -> np.ndarray:
    """Broadcast the graph-level feature row onto every node row."""
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    tiled = np.tile(graph_feats, (matrix.shape[0], 1))
    return np.hstack([matrix, tiled])
