"""Machine-learning substrate for the classification-based selectors.

The paper trains LIBLINEAR logistic-regression models whose positive
class is the greedy vertex cover of the pair graph; this subpackage
rebuilds that pipeline without any ML dependency:

* :mod:`repro.ml.logistic` — L2-regularised logistic regression
  (scipy L-BFGS with a pure-numpy gradient-descent fallback).
* :mod:`repro.ml.scaling` — the paper's [-1, 1] feature normalisation.
* :mod:`repro.ml.features` — node features (degrees + landmark-delta
  norms for random / MaxMin / MaxAvg landmarks) and graph-level features
  (density, max degree) for the global model.
* :mod:`repro.ml.training` — training-set assembly from an earlier
  snapshot pair and local/global model fitting.
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import MinMaxScaler
from repro.ml.features import (
    GRAPH_FEATURE_NAMES,
    NODE_FEATURE_NAMES,
    FeatureResult,
    extract_node_features,
    graph_level_features,
)
from repro.ml.training import (
    TrainedModel,
    build_training_examples,
    train_global_classifier,
    train_local_classifier,
)
from repro.ml.persistence import (
    ModelPersistenceError,
    load_model,
    save_model,
)

__all__ = [
    "LogisticRegression",
    "MinMaxScaler",
    "GRAPH_FEATURE_NAMES",
    "NODE_FEATURE_NAMES",
    "FeatureResult",
    "extract_node_features",
    "graph_level_features",
    "TrainedModel",
    "build_training_examples",
    "train_global_classifier",
    "train_local_classifier",
    "ModelPersistenceError",
    "load_model",
    "save_model",
]
