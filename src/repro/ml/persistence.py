"""Saving and loading trained classifier models.

A :class:`~repro.ml.training.TrainedModel` is a handful of numpy arrays
plus metadata; persistence uses a single ``.npz`` archive so models can
be trained once (the expensive part: ground truth on the training
snapshots) and reused across sessions, processes, and the CLI.

The format is deliberately explicit — every field is stored under its
own key, the format is versioned, and loading validates shapes — so a
stale or truncated file fails loudly instead of mis-ranking nodes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import MinMaxScaler
from repro.ml.training import TrainedModel

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


class ModelPersistenceError(ValueError):
    """Raised when a model file is missing fields or inconsistent."""


def save_model(model: TrainedModel, path: PathLike) -> None:
    """Serialise a trained model bundle to a ``.npz`` archive."""
    if model.model.coef_ is None:
        raise ModelPersistenceError("cannot save an unfitted model")
    if model.scaler.data_min_ is None:
        raise ModelPersistenceError("cannot save an unfitted scaler")
    path = Path(path)
    np.savez(
        path,
        format_version=np.array(FORMAT_VERSION),
        coef=model.model.coef_,
        intercept=np.array(model.model.intercept_),
        l2=np.array(model.model.l2),
        class_weight=np.array(
            model.model.class_weight or "", dtype=np.str_
        ),
        scaler_min=model.scaler.data_min_,
        scaler_max=model.scaler.data_max_,
        scaler_range=np.array(model.scaler.feature_range),
        feature_names=np.array(model.feature_names, dtype=np.str_),
        uses_graph_features=np.array(model.uses_graph_features),
        num_landmarks=np.array(model.num_landmarks),
        positive_fraction=np.array(model.positive_fraction),
    )


def _require(archive, key: str) -> np.ndarray:
    if key not in archive:
        raise ModelPersistenceError(f"model file is missing field {key!r}")
    return archive[key]


def load_model(path: PathLike) -> TrainedModel:
    """Load a model bundle written by :func:`save_model`.

    Raises
    ------
    ModelPersistenceError
        On unknown format versions, missing fields, or inconsistent
        shapes between the classifier and the scaler.
    """
    path = Path(path)
    # np.savez appends .npz when absent; mirror that on load.
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        version = int(_require(archive, "format_version"))
        if version != FORMAT_VERSION:
            raise ModelPersistenceError(
                f"unsupported model format version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        coef = _require(archive, "coef")
        class_weight = str(_require(archive, "class_weight")) or None
        logistic = LogisticRegression(
            l2=float(_require(archive, "l2")), class_weight=class_weight
        )
        logistic.coef_ = coef
        logistic.intercept_ = float(_require(archive, "intercept"))

        lo, hi = (float(x) for x in _require(archive, "scaler_range"))
        scaler = MinMaxScaler(feature_range=(lo, hi))
        scaler.data_min_ = _require(archive, "scaler_min")
        scaler.data_max_ = _require(archive, "scaler_max")

        feature_names = tuple(str(n) for n in _require(archive, "feature_names"))
        if coef.shape[0] != len(feature_names):
            raise ModelPersistenceError(
                f"coefficient count {coef.shape[0]} does not match "
                f"{len(feature_names)} feature names"
            )
        if scaler.data_min_.shape[0] != len(feature_names):
            raise ModelPersistenceError(
                "scaler dimensionality does not match the feature names"
            )

        return TrainedModel(
            model=logistic,
            scaler=scaler,
            feature_names=feature_names,
            uses_graph_features=bool(_require(archive, "uses_graph_features")),
            num_landmarks=int(_require(archive, "num_landmarks")),
            positive_fraction=float(_require(archive, "positive_fraction")),
        )
