"""L2-regularised binary logistic regression.

A from-scratch replacement for the paper's LIBLINEAR classifier: the same
model family (linear logit, L2 penalty, unpenalised intercept), the same
regularised maximum-likelihood objective, and — what the selectors
actually consume — the same probability ranking of nodes.

Optimisation uses scipy's L-BFGS-B with the analytic gradient; if scipy
is unavailable at runtime the fit falls back to plain full-batch gradient
descent with backtracking, which reaches ranking-equivalent solutions on
the small feature sets used here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # scipy is a hard dependency of the package, but degrade gracefully
    from scipy.optimize import minimize as _scipy_minimize
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_minimize = None


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    l2:
        Regularisation strength λ; the objective is
        ``mean NLL + (λ / 2n) ||w||²`` (intercept unpenalised).
    class_weight:
        ``None`` for unweighted likelihood or ``"balanced"`` to reweight
        classes inversely to their frequency — useful here because the
        positive class (greedy-cover membership) is a tiny fraction of
        the nodes.
    max_iter, tol:
        Optimiser limits.

    Attributes
    ----------
    coef_:
        Learned weight vector of shape ``(d,)`` after :meth:`fit`.
    intercept_:
        Learned bias term.
    """

    def __init__(
        self,
        l2: float = 1.0,
        class_weight: Optional[str] = "balanced",
        max_iter: int = 500,
        tol: float = 1e-8,
    ) -> None:
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        if class_weight not in (None, "balanced"):
            raise ValueError(
                f"class_weight must be None or 'balanced', got {class_weight!r}"
            )
        self.l2 = l2
        self.class_weight = class_weight
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    # ------------------------------------------------------------------
    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones_like(y, dtype=float)
        n = y.size
        n_pos = max(int(y.sum()), 1)
        n_neg = max(n - int(y.sum()), 1)
        w = np.where(y > 0.5, n / (2.0 * n_pos), n / (2.0 * n_neg))
        return w

    def _objective(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray,
                   sw: np.ndarray) -> tuple:
        n = X.shape[0]
        w, b = theta[:-1], theta[-1]
        z = X @ w + b
        # log(1 + exp(-z)) for y=1, log(1 + exp(z)) for y=0, both stable:
        nll = sw * (np.logaddexp(0.0, z) - y * z)
        p = _sigmoid(z)
        resid = sw * (p - y)
        grad_w = X.T @ resid / n + (self.l2 / n) * w
        grad_b = resid.sum() / n
        loss = nll.sum() / n + (self.l2 / (2.0 * n)) * float(w @ w)
        return loss, np.append(grad_w, grad_b)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on feature matrix ``X`` (n, d) and 0/1 labels ``y`` (n,)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
            )
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValueError("y must contain only 0/1 labels")
        sw = self._sample_weights(y)
        theta0 = np.zeros(X.shape[1] + 1)

        if _scipy_minimize is not None:
            res = _scipy_minimize(
                self._objective,
                theta0,
                args=(X, y, sw),
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter, "gtol": self.tol},
            )
            theta = res.x
        else:  # pragma: no cover - exercised only without scipy
            theta = self._gradient_descent(theta0, X, y, sw)

        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])
        return self

    def _gradient_descent(
        self, theta: np.ndarray, X: np.ndarray, y: np.ndarray, sw: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - scipy fallback
        step = 1.0
        loss, grad = self._objective(theta, X, y, sw)
        for _ in range(self.max_iter):
            while step > 1e-12:
                candidate = theta - step * grad
                new_loss, new_grad = self._objective(candidate, X, y, sw)
                if new_loss <= loss - 0.5 * step * float(grad @ grad):
                    break
                step *= 0.5
            theta, loss, grad = candidate, new_loss, new_grad
            if float(np.abs(grad).max()) < self.tol:
                break
            step = min(step * 2.0, 1.0)
        return theta

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits ``Xw + b``."""
        self._require_fitted()
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(class = 1) per row — the ranking signal the selectors sort by."""
        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)
