"""Compact undirected graph with optional edge weights.

The :class:`Graph` class is the static-graph workhorse of the library.  It
stores an adjacency map ``node -> {neighbor: weight}``; unweighted graphs
simply carry weight ``1.0`` on every edge, which keeps a single code path
for BFS (hop counts) and Dijkstra (weighted distances).

Design notes
------------
* Nodes may be any hashable object; the synthetic generators use ``int``.
* The graph is *simple*: self loops are rejected and parallel edges
  collapse (re-adding an edge updates its weight).
* Mutation is insertion-oriented (``add_node`` / ``add_edge``), matching
  the paper's growth-only dynamic model.  ``remove_edge`` / ``remove_node``
  exist for completeness and for building test fixtures.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """An undirected, optionally weighted, simple graph.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples used
        to seed the graph.

    Examples
    --------
    >>> g = Graph([(1, 2), (2, 3, 5.0)])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.weight(2, 3)
    5.0
    """

    __slots__ = ("_adj",)

    def __init__(self, edges: Optional[Iterable[tuple]] = None) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        if edges is not None:
            for edge in edges:
                if len(edge) == 2:
                    u, v = edge
                    self.add_edge(u, v)
                else:
                    u, v, w = edge
                    self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, u: Node) -> None:
        """Add an isolated node (no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = {}

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}``; nodes are created as needed.

        Re-adding an existing edge overwrites its weight.  Self loops are
        rejected because shortest-path semantics never use them and the
        paper's graphs are simple.
        """
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u!r})")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self._adj.setdefault(u, {})[v] = weight
        self._adj.setdefault(v, {})[u] = weight

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, u: Node) -> None:
        """Remove ``u`` and all incident edges; raises ``KeyError`` if absent."""
        for v in list(self._adj[u]):
            del self._adj[v][u]
        del self._adj[u]

    def add_edges_from(self, edges: Iterable[tuple]) -> None:
        """Bulk :meth:`add_edge` from ``(u, v)`` / ``(u, v, w)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            else:
                self.add_edge(edge[0], edge[1], edge[2])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, u: Node) -> bool:
        return u in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once.

        The representative orientation is the one whose endpoint was seen
        first during iteration; callers that need canonical pairs should
        normalise with :func:`repro.core.pairs.canonical_pair`.
        """
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def weighted_edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Like :meth:`edges` but yielding ``(u, v, weight)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def has_edge(self, u: Node, v: Node) -> bool:
        """True if the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, u: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``u``; raises ``KeyError`` if absent."""
        return iter(self._adj[u])

    def adjacency(self, u: Node) -> Dict[Node, float]:
        """The internal ``{neighbor: weight}`` mapping of ``u`` (do not mutate)."""
        return self._adj[u]

    def degree(self, u: Node) -> int:
        """Number of neighbors of ``u``.  Nodes absent from the graph have
        degree 0 — the paper compares degrees across snapshots where a node
        may not yet exist in the earlier one, so this is deliberately
        forgiving."""
        nbrs = self._adj.get(u)
        return len(nbrs) if nbrs is not None else 0

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._adj[u][v]

    def degrees(self) -> Dict[Node, int]:
        """Mapping of every node to its degree."""
        return {u: len(nbrs) for u, nbrs in self._adj.items()}

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def density(self) -> float:
        """Edge density ``2m / (n (n - 1))``; 0.0 for graphs with < 2 nodes."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def is_weighted(self) -> bool:
        """True if any edge carries a weight different from 1.0."""
        return any(w != 1.0 for _, _, w in self.weighted_edges())

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """An independent deep copy of the graph."""
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes`` (unknown nodes are ignored)."""
        keep = {u for u in nodes if u in self._adj}
        g = Graph()
        for u in keep:
            g.add_node(u)
            for v, w in self._adj[u].items():
                if v in keep:
                    g._adj[u][v] = w
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
