"""Bit-parallel multi-source BFS: up to 64 traversals per frontier sweep.

:func:`repro.graph.csr.bfs_levels` already expands whole levels with
vectorised gathers, but a batch of ``b`` sources still pays ``b``
independent Python-level frontier loops over the same adjacency.  This
module amortises that: the frontiers of up to 64 sources are packed into
one ``uint64`` word per node (*lane* ``j`` = bit ``j`` = source ``j``),
so a single sweep advances every traversal in the batch at once —

* ``visited`` / ``frontier`` / ``next`` are ``(num_nodes, words)``
  ``uint64`` arrays (``words = ceil(batch / 64)``);
* one level step OR-accumulates each frontier node's word into its
  neighbors' ``next`` words (``np.bitwise_or.at`` — a scatter with
  duplicate accumulation), then masks off already-visited lanes;
* the freshly set bits are unpacked back into per-source ``int32``
  level rows.

BFS levels do not depend on visit order within a level, so the output is
**bit-identical** to running :func:`~repro.graph.csr.bfs_levels` once per
source — same values, same dtype, any batch width.  The differential and
hypothesis suites (``tests/test_graph_msbfs.py``) pin this.

Budget semantics are untouched: one *source* in a batch is still one
SSSP result, charged exactly like a lone traversal (the ledger counts
results obtained, not frontier sweeps — see docs/budget-model.md).
"""

from __future__ import annotations

import sys
from typing import Iterator, Sequence, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph, UNREACHED, _multi_arange

#: Lanes per frontier word — one uint64 bit per source.
WORD_BITS = 64

#: Default batch width: one full word of sources per sweep.
DEFAULT_BATCH = 64

Sources = Union[Sequence[int], np.ndarray, range]


def _as_source_array(csr: CSRGraph, sources: Sources) -> np.ndarray:
    src = np.asarray(sources, dtype=np.int64).ravel()
    n = csr.num_nodes
    if src.size and (int(src.min()) < 0 or int(src.max()) >= n):
        bad = src[(src < 0) | (src >= n)][0]
        raise IndexError(f"source index {int(bad)} out of range [0, {n})")
    return src


def _msbfs_block(csr: CSRGraph, src: np.ndarray) -> np.ndarray:
    """Level rows for one batch of at most :data:`WORD_BITS` · words sources."""
    n = csr.num_nodes
    b = int(src.size)
    words = (b + WORD_BITS - 1) // WORD_BITS
    levels = np.full((b, n), UNREACHED, dtype=np.int32)
    lanes = np.arange(b, dtype=np.int64)
    levels[lanes, src] = 0

    visited = np.zeros((n, words), dtype=np.uint64)
    frontier = np.zeros((n, words), dtype=np.uint64)
    scratch = np.zeros((n, words), dtype=np.uint64)
    lane_word = lanes // WORD_BITS
    lane_bit = np.left_shift(
        np.uint64(1), (lanes % WORD_BITS).astype(np.uint64)
    )
    # Duplicate sources (two lanes seeded on one node) must both set
    # their bits, so the seed is a scatter-OR, not plain assignment.
    np.bitwise_or.at(visited, (src, lane_word), lane_bit)
    np.bitwise_or.at(frontier, (src, lane_word), lane_bit)

    indptr, indices = csr.indptr, csr.indices
    depth = 0
    while True:
        active = np.flatnonzero(frontier.any(axis=1))
        if not active.size:
            break
        depth += 1
        starts = indptr[active]
        counts = indptr[active + 1] - starts
        nonzero = counts > 0
        if not nonzero.any():
            break
        gather = _multi_arange(starts[nonzero], counts[nonzero])
        neighbors = indices[gather]
        owners = np.repeat(active[nonzero], counts[nonzero])
        scratch[:] = 0
        np.bitwise_or.at(scratch, neighbors, frontier[owners])
        np.bitwise_and(scratch, ~visited, out=scratch)
        reached = np.flatnonzero(scratch.any(axis=1))
        if not reached.size:
            break
        visited[reached] |= scratch[reached]
        fresh = scratch[reached]
        if sys.byteorder != "little":  # pragma: no cover - BE hosts only
            fresh = fresh.byteswap()
        bits = np.unpackbits(
            fresh.view(np.uint8), axis=1, bitorder="little"
        )
        node_pos, lane = np.nonzero(bits[:, :b])
        levels[lane, reached[node_pos]] = depth
        frontier, scratch = scratch, frontier
    return levels


def msbfs_levels(
    csr: CSRGraph, sources: Sources, batch_size: int = DEFAULT_BATCH
) -> np.ndarray:
    """Level rows for every source, ``batch_size`` traversals per sweep.

    Returns a ``(len(sources), num_nodes)`` ``int32`` matrix whose row
    ``j`` equals ``bfs_levels(csr, sources[j])`` bit for bit
    (``UNREACHED`` off-component).  ``batch_size`` only controls how
    many sources share a frontier sweep — never the output.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    src = _as_source_array(csr, sources)
    out = np.empty((src.size, csr.num_nodes), dtype=np.int32)
    for start in range(0, src.size, batch_size):
        block = src[start : start + batch_size]
        out[start : start + block.size] = _msbfs_block(csr, block)
    return out


def iter_msbfs_rows(
    csr: CSRGraph, sources: Sources, batch_size: int = DEFAULT_BATCH
) -> Iterator[Tuple[int, np.ndarray]]:
    """Stream ``(source_idx, level_row)`` pairs, batched under the hood.

    Rows are yielded in ``sources`` order; each row is a distinct slice
    of its batch matrix (freshly allocated per batch, never reused), so
    consumers may mutate a yielded row in place — the documented
    contract of :func:`repro.core.fastpairs._row_stream`.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    src = _as_source_array(csr, sources)
    for start in range(0, src.size, batch_size):
        block_src = src[start : start + batch_size]
        block = _msbfs_block(csr, block_src)
        for j in range(block_src.size):
            yield int(block_src[j]), block[j]
