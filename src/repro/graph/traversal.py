"""Single-source and point-to-point shortest-path traversals.

Hop-count BFS is the distance engine of the whole reproduction (the paper's
graphs are unweighted); Dijkstra handles the weighted generalisation the
problem definition allows.  :func:`single_source_distances` dispatches on
the graph's weightedness so callers never have to choose.

All distance maps contain only *reachable* nodes: absence of a key means
infinite distance, which mirrors the paper's restriction to connected
pairs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph.graph import Graph

Node = Hashable
INF = float("inf")


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node.

    Runs in ``O(n + m)``.  The source itself maps to 0.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_distances_bounded(
    graph: Graph, source: Node, max_depth: int
) -> Dict[Node, int]:
    """Like :func:`bfs_distances` but truncated at ``max_depth`` hops.

    Useful for neighborhood queries (e.g. Selective Expansion looks only
    at direct neighbors).  ``max_depth`` of 0 returns just the source.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    if max_depth < 0:
        raise ValueError(f"max_depth must be >= 0, got {max_depth}")
    dist: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == max_depth:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_distances_many(
    graph: Graph, sources: List[Node]
) -> List[Dict[Node, int]]:
    """Hop-distance dicts for many sources via one bit-parallel pass.

    Equivalent to ``[bfs_distances(graph, s) for s in sources]`` — same
    reachable-only dicts, same key insertion irrelevance — but the
    traversals advance together through the multi-source kernel
    (:func:`repro.graph.msbfs.msbfs_levels`, up to 64 sources per
    frontier sweep over one frozen CSR view).  Worth it from a handful
    of sources up; for a single one-off query :func:`bfs_distances`
    avoids the CSR conversion.
    """
    for source in sources:
        if source not in graph:
            raise KeyError(f"source {source!r} not in graph")
    if not sources:
        return []
    import numpy as np

    from repro.graph.csr import CSRGraph, UNREACHED
    from repro.graph.msbfs import msbfs_levels

    csr = CSRGraph.from_graph(graph)
    levels = msbfs_levels(csr, [csr.index[s] for s in sources])
    out: List[Dict[Node, int]] = []
    for row in levels:
        reached = np.flatnonzero(row != UNREACHED)
        out.append({csr.nodes[i]: int(row[i]) for i in reached})
    return out


def bfs_tree(graph: Graph, source: Node) -> Tuple[Dict[Node, int], Dict[Node, Node]]:
    """BFS distances plus a predecessor map for path reconstruction.

    Returns ``(dist, parent)`` where ``parent[source]`` is absent.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, int] = {source: 0}
    parent: Dict[Node, Node] = {}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                parent[v] = u
                queue.append(v)
    return dist, parent


def dijkstra_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Weighted shortest-path distances from ``source`` (binary heap).

    Runs in ``O((n + m) log n)``.  Edge weights must be positive, which
    :class:`~repro.graph.graph.Graph` already enforces.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, float] = {}
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 0  # tie-breaker so heterogeneous nodes never get compared
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        for v, w in graph.adjacency(u).items():
            if v not in dist:
                counter += 1
                heapq.heappush(heap, (d + w, counter, v))
    return dist


def dijkstra_tree(
    graph: Graph, source: Node
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Dijkstra distances plus predecessor map, analogous to :func:`bfs_tree`."""
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, float] = {}
    parent: Dict[Node, Node] = {}
    best: Dict[Node, float] = {source: 0.0}
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        for v, w in graph.adjacency(u).items():
            nd = d + w
            if v not in dist and nd < best.get(v, INF):
                best[v] = nd
                parent[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    return dist, parent


def single_source_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Distances from ``source``: BFS hops if unweighted, Dijkstra otherwise.

    This is the "one SSSP computation" unit the paper's budget counts.
    """
    if graph.is_weighted():
        return dijkstra_distances(graph, source)
    return dict(bfs_distances(graph, source))


def bidirectional_bfs(graph: Graph, source: Node, target: Node) -> Optional[int]:
    """Point-to-point hop distance via alternating frontier expansion.

    Returns ``None`` if ``target`` is unreachable.  Expands the smaller
    frontier each round, which is asymptotically ``O(b^(d/2))`` on
    branching-factor-``b`` graphs versus ``O(b^d)`` for plain BFS.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    if target not in graph:
        raise KeyError(f"target {target!r} not in graph")
    if source == target:
        return 0
    dist_s: Dict[Node, int] = {source: 0}
    dist_t: Dict[Node, int] = {target: 0}
    frontier_s = {source}
    frontier_t = {target}
    while frontier_s and frontier_t:
        # Expand the smaller side.
        if len(frontier_s) <= len(frontier_t):
            frontier, dist, other = frontier_s, dist_s, dist_t
            forward = True
        else:
            frontier, dist, other = frontier_t, dist_t, dist_s
            forward = False
        nxt = set()
        best = None
        for u in frontier:
            du = dist[u]
            for v in graph.neighbors(u):
                if v in other:
                    total = du + 1 + other[v]
                    if best is None or total < best:
                        best = total
                if v not in dist:
                    dist[v] = du + 1
                    nxt.add(v)
        if best is not None:
            return best
        if forward:
            frontier_s = nxt
        else:
            frontier_t = nxt
    return None


def shortest_path_length(graph: Graph, source: Node, target: Node) -> Optional[float]:
    """Point-to-point distance; ``None`` if disconnected.

    Uses bidirectional BFS for unweighted graphs and a full Dijkstra run
    otherwise (the experiments never need weighted point-to-point queries
    in bulk, so no weighted bidirectional search is provided).
    """
    if graph.is_weighted():
        return dijkstra_distances(graph, source).get(target)
    return bidirectional_bfs(graph, source, target)


def reconstruct_path(
    parent: Dict[Node, Node], source: Node, target: Node
) -> Optional[List[Node]]:
    """Recover the ``source -> target`` path from a predecessor map.

    ``parent`` must come from :func:`bfs_tree` or :func:`dijkstra_tree`
    rooted at ``source``.  Returns ``None`` when ``target`` was never
    reached.
    """
    if target == source:
        return [source]
    if target not in parent:
        return None
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path
