"""Temporal graphs: timestamped edge streams and snapshot materialisation.

The paper models a dynamic network as a sequence of slices of node and edge
*insertions*; the graph at time ``t`` aggregates every slice up to ``t``.
:class:`TemporalGraph` captures exactly that: an append-only, timestamp-
ordered stream of :class:`EdgeEvent` records, from which static
:class:`~repro.graph.graph.Graph` snapshots are materialised either at a
timestamp (``snapshot_at_time``) or at a fraction of the stream
(``snapshot_at_fraction`` — the paper's "80% of the edges" split).

Because the stream is insertion-only, any two snapshots ``G_t1``/``G_t2``
with ``t1 <= t2`` automatically satisfy the subgraph relation the problem
definition requires, and distances can only decrease from ``G_t1`` to
``G_t2``.

Real-world temporal dumps are *not* always insertion-only: unfollows and
withdrawals show up as zero- or negative-weight rows.  The stream layer
represents such a row as an :class:`EdgeEvent` with ``weight <= 0`` (see
:attr:`EdgeEvent.is_deletion`) and materialisation applies it — the edge,
if present, is removed from the snapshot.  A stream containing deletions
therefore materialises without crashing, but its snapshot pairs can
violate the subgraph relation; that is exactly what
:func:`repro.graph.validation.check_snapshot_pair` exists to catch, and
what the ingestion layer (:mod:`repro.ingest`) repairs or quarantines at
the boundary.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph

Node = Hashable


@dataclass(frozen=True, order=True)
class EdgeEvent:
    """A single timestamped undirected edge insertion.

    Ordering is by ``time`` first (then endpoints, for determinism), so a
    sorted list of events is a valid stream.
    """

    time: float
    u: Node = None
    v: Node = None
    weight: float = 1.0

    def endpoints(self) -> Tuple[Node, Node]:
        """The pair ``(u, v)`` of this event."""
        return (self.u, self.v)

    @property
    def is_deletion(self) -> bool:
        """True if this event *removes* its edge (``weight <= 0``).

        The paper's model is insertion-only; deletion events only appear
        when a dirty real-world stream is loaded without sanitization.
        """
        return self.weight <= 0


class TemporalGraph:
    """An insertion-only stream of timestamped edges.

    Parameters
    ----------
    events:
        Optional iterable of :class:`EdgeEvent` (or ``(time, u, v)`` /
        ``(time, u, v, weight)`` tuples).  Events may arrive unsorted; the
        stream is kept sorted by time internally.

    Examples
    --------
    >>> tg = TemporalGraph([(0, "a", "b"), (1, "b", "c"), (2, "a", "c")])
    >>> g1 = tg.snapshot_at_fraction(2 / 3)
    >>> g1.num_edges
    2
    >>> tg.snapshot().num_edges
    3
    """

    def __init__(self, events: Optional[Iterable] = None) -> None:
        self._events: List[EdgeEvent] = []
        self._sorted = True
        if events is not None:
            for ev in events:
                self.add_event(ev)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_event(self, event: "EdgeEvent | Sequence") -> None:
        """Append one event; tuples are coerced to :class:`EdgeEvent`."""
        if not isinstance(event, EdgeEvent):
            if len(event) == 3:
                event = EdgeEvent(time=event[0], u=event[1], v=event[2])
            else:
                event = EdgeEvent(
                    time=event[0], u=event[1], v=event[2], weight=event[3]
                )
        if event.u == event.v:
            raise ValueError(f"self loop at time {event.time}: {event.u!r}")
        if self._events and event.time < self._events[-1].time:
            self._sorted = False
        self._events.append(event)

    def add_edge(self, time: float, u: Node, v: Node, weight: float = 1.0) -> None:
        """Convenience wrapper around :meth:`add_event`."""
        self.add_event(EdgeEvent(time=time, u=u, v=v, weight=weight))

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # Stable sort on time keeps same-timestamp insertion order,
            # which matters for fraction-based snapshots.
            self._events.sort(key=lambda ev: ev.time)
            self._sorted = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Number of edge-insertion events in the stream."""
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> Sequence[EdgeEvent]:
        """The full stream, sorted by time."""
        self._ensure_sorted()
        return tuple(self._events)

    def __iter__(self) -> Iterator[EdgeEvent]:
        self._ensure_sorted()
        return iter(self._events)

    def time_span(self) -> Tuple[float, float]:
        """``(first, last)`` event timestamps; raises on an empty stream."""
        if not self._events:
            raise ValueError("empty temporal graph has no time span")
        self._ensure_sorted()
        return (self._events[0].time, self._events[-1].time)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Graph:
        """The final graph: every event applied."""
        return self._materialise(len(self._events))

    def snapshot_at_time(self, t: float) -> Graph:
        """The graph aggregating all events with ``time <= t``."""
        self._ensure_sorted()
        times = [ev.time for ev in self._events]
        cut = bisect.bisect_right(times, t)
        return self._materialise(cut)

    def snapshot_at_fraction(self, fraction: float) -> Graph:
        """The graph of the first ``round(fraction * num_events)`` events.

        This is the paper's split: ``G_t1`` holds 80 percent of the edges
        and ``G_t2`` the entire graph.  ``fraction`` must lie in [0, 1].
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self._ensure_sorted()
        cut = round(fraction * len(self._events))
        return self._materialise(cut)

    def snapshot_pair(
        self, f1: float, f2: float = 1.0
    ) -> Tuple[Graph, Graph]:
        """Materialise ``(G_t1, G_t2)`` at stream fractions ``f1 <= f2``."""
        if f1 > f2:
            raise ValueError(f"need f1 <= f2, got {f1} > {f2}")
        return (self.snapshot_at_fraction(f1), self.snapshot_at_fraction(f2))

    def events_between(self, f1: float, f2: float) -> List[EdgeEvent]:
        """Events strictly after fraction ``f1`` up to fraction ``f2``.

        These are the "new edges" of the second snapshot — the raw input
        of the Incidence family of algorithms.
        """
        if not 0.0 <= f1 <= f2 <= 1.0:
            raise ValueError(f"need 0 <= f1 <= f2 <= 1, got ({f1}, {f2})")
        self._ensure_sorted()
        lo = round(f1 * len(self._events))
        hi = round(f2 * len(self._events))
        return list(self._events[lo:hi])

    def _materialise(self, cut: int) -> Graph:
        self._ensure_sorted()
        g = Graph()
        for ev in self._events[:cut]:
            if ev.is_deletion:
                # Deletion events remove the edge if present (endpoints
                # stay, possibly isolated) and never add anything.
                if g.has_edge(ev.u, ev.v):
                    g.remove_edge(ev.u, ev.v)
                continue
            # Re-insertions of an existing edge are tolerated (real edge
            # streams contain repeated interactions); the simple graph
            # keeps one edge and the latest weight.
            if not g.has_edge(ev.u, ev.v):
                g.add_edge(ev.u, ev.v, ev.weight)

        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TemporalGraph(events={len(self._events)})"
