"""Δ-aware pruning: upper bounds, running k-th tracking, cut traversals.

The budgeted pipeline charges one SSSP per scored source, but until now
every charged traversal ran to exhaustion — even when the source
provably could not place a pair into the top-k.  The top-k closeness
literature (Borassi et al. 2015; Bergamini et al. 2017) cuts each BFS
once an upper bound rules the source out; this module ports that cut to
the convergence score ``Δ(u, v) = d_t1(u, v) − d_t2(u, v)``.

The bound rests on one structural fact of insertion-only evolution
(``G_t1 ⊆ G_t2``).  Take any pair with ``Δ(u, v) > 0``: its t2 shortest
path must cross at least one inserted edge, and the path *prefix* up to
the **first** inserted edge ``(a, b)`` uses only t1 edges.  Therefore

    d_t2(u, v) ≥ d_t1(u, a) + 1 ≥ prox1(u) + 1,

where ``prox1(u)`` is the minimum t1 level from ``u`` over the
t1-present endpoints of inserted edges.  Combined with
``d_t1(u, v) ≤ ecc1(u)`` (the largest finite t1 level from ``u``):

    Δ(u, v) ≤ ecc1(u) − prox1(u) − 1  =: B(u)        (per source)
    Δ(u, v) ≤ d_t1(u, v) − prox1(u) − 1              (per target)

Both bounds fall out of the t1 level array alone — no t2 work.  A
source whose ``B(u)`` drops below the running k-th best Δ is *skipped*
(its t2 traversal never runs); a surviving source's traversal is *cut*
level-by-level: only targets with ``d_t2 ≤ ecc1(u) − θ`` can reach
``Δ ≥ θ``, so the frontier loop stops at that depth.  A source with no
t1-reachable inserted endpoint has no converging pair at all (every
finite distance is already optimal) and is always skippable.

Soundness of the cut: a level-limited traversal performs iterations
identical to the unlimited one up to the cut depth, so every level it
*does* assign at or below ``max_level`` is exact; pairs collected at
``Δ ≥ θ`` necessarily satisfy ``d_t2 ≤ max_level`` and therefore carry
exact distances, while nodes beyond the cut keep ``Δ ≤ 0`` and are
excluded anyway.  The differential harness (tests/test_prune_oracle.py)
pins byte-identity of the final output against every unpruned engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph, UNREACHED, _multi_arange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.graph.incremental import SnapshotDelta

#: Bound value meaning "no converging pair can involve this source".
#: More negative than any achievable Δ bound, so ``bound < threshold``
#: prunes it under every threshold ≥ any real Δ.
NO_PAIRS = -(2**31)


@dataclass(frozen=True)
class PrunePlan:
    """Per-snapshot-pair pruning state, built once and reused per source.

    Attributes
    ----------
    seed_idx1:
        csr1 indices of the inserted-edge endpoints that already exist
        at t1 — the only places a shorter t2 path can branch off a t1
        prefix.  Plain numpy, so the plan ships to parallel workers
        once per pool exactly like :class:`SnapshotDelta` itself.
    """

    seed_idx1: np.ndarray

    @classmethod
    def from_delta(cls, delta: "SnapshotDelta") -> "PrunePlan":
        """Derive the pruning plan from a precomputed snapshot delta."""
        if not delta.edge_tails.size:
            return cls(seed_idx1=np.empty(0, dtype=np.int64))
        # Inserted endpoints in csr2 index space -> keep those present at
        # t1 and translate to csr1 indices via the alignment mapping.
        endpoints2 = np.unique(
            np.concatenate([delta.edge_tails, delta.edge_heads])
        )
        back = np.full(delta.csr2.num_nodes, -1, dtype=np.int64)
        back[delta.mapping] = np.arange(delta.mapping.size, dtype=np.int64)
        idx1 = back[endpoints2]
        return cls(seed_idx1=idx1[idx1 >= 0])


@dataclass
class PruneStats:
    """Counters describing what a pruned pass actually did.

    ``sources`` is the number of sources considered; each lands in
    exactly one of ``skipped`` (bound ruled it out before any t2 work),
    ``cut`` (traversal ran level-limited), or ``full`` (no limit
    applied).  Benchmarks surface these so a "speedup" is attributable.
    """

    sources: int = 0
    skipped: int = 0
    cut: int = 0
    full: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON baselines."""
        return {
            "sources": self.sources,
            "skipped": self.skipped,
            "cut": self.cut,
            "full": self.full,
        }


def source_bound(levels1: np.ndarray, plan: PrunePlan) -> int:
    """Upper bound ``B(u)`` on the best Δ achievable from this source.

    ``levels1`` is the source's t1 level array over the csr1 universe
    (any integer dtype, ``UNREACHED`` where disconnected).  Returns
    ``ecc1(u) − prox1(u) − 1``, or :data:`NO_PAIRS` when no inserted
    endpoint is t1-reachable (then *no* pair involving this source can
    converge: every t2 shortest path from it that crosses an inserted
    edge would need a t1 prefix to a reachable endpoint).
    """
    if not plan.seed_idx1.size:
        return NO_PAIRS
    seed_levels = levels1[plan.seed_idx1]
    seed_levels = seed_levels[seed_levels != UNREACHED]
    if not seed_levels.size:
        return NO_PAIRS
    ecc = int(levels1.max())
    return ecc - int(seed_levels.min()) - 1


class KthTracker:
    """Running k-th best Δ over the pair scores offered so far.

    Maintains the top-``k`` positive Δ values seen (an unordered numpy
    buffer trimmed with ``np.partition``).  :attr:`threshold` is the
    smallest Δ that could still *enter or tie* the current top-k — 1
    until ``k`` positive scores exist (any converging pair might still
    place), then the running k-th value itself.  Pruning strictly below
    the threshold and collecting at-or-above it preserves ties at the
    k-th Δ, so the deterministic ``(−Δ, repr)`` final ordering is
    untouched.

    Callers must offer each *distinct* pair's Δ at most once: offering a
    pair from both endpoints would inflate the running k-th and
    over-prune.
    """

    __slots__ = ("k", "_top")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._top = np.empty(0, dtype=np.int64)

    def offer(self, deltas: np.ndarray) -> None:
        """Fold a batch of candidate Δ values into the running top-k."""
        positive = deltas[deltas > 0]
        if not positive.size:
            return
        merged = np.concatenate([self._top, positive.astype(np.int64)])
        if merged.size > self.k:
            cut = merged.size - self.k
            merged = np.partition(merged, cut)[cut:]
        self._top = merged

    @property
    def threshold(self) -> int:
        """Smallest Δ that could still enter or tie the running top-k."""
        if self._top.size < self.k:
            return 1
        return int(self._top.min())


def bounded_bfs_levels(
    csr: CSRGraph, source_idx: int, max_level: Optional[int] = None
) -> np.ndarray:
    """Level-cut BFS: exact levels up to ``max_level``, sentinel beyond.

    Identical frontier expansion to :func:`repro.graph.csr.bfs_levels`,
    stopped once the next level would exceed ``max_level``.  Unreached
    *and* cut nodes carry the sentinel ``csr.num_nodes`` — deliberately
    **not** ``UNREACHED``: downstream Δ scoring computes ``lv1 − lv2``,
    and a ``-1`` sentinel would turn a cut node into a fake convergence
    (``lv1 + 1 > 0``) while the above-any-level sentinel makes every cut
    node's Δ negative, i.e. ignorable.
    """
    n = csr.num_nodes
    if not 0 <= source_idx < n:
        raise IndexError(f"source index {source_idx} out of range [0, {n})")
    sentinel = n
    levels = np.full(n, sentinel, dtype=np.int32)
    levels[source_idx] = 0
    frontier = np.array([source_idx], dtype=np.int64)
    depth = 0
    indptr, indices = csr.indptr, csr.indices
    while frontier.size and (max_level is None or depth < max_level):
        depth += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nonzero = counts > 0
        if not nonzero.any():
            break
        gather = _multi_arange(starts[nonzero], counts[nonzero])
        neighbors = indices[gather]
        fresh = neighbors[levels[neighbors] == sentinel]
        if fresh.size == 0:
            break
        levels[fresh] = depth
        frontier = np.flatnonzero(levels == depth)
    return levels
