"""Structural validation and repair for snapshot pairs.

The problem definition silently assumes several structural facts:
``G_t1`` is a subgraph of ``G_t2`` (insertion-only evolution), both are
simple undirected graphs, and edge weights never increase.  Violating any
of these makes "distance decrease" meaningless, so the public entry points
validate their inputs eagerly with these helpers instead of producing
garbage rankings.

:func:`check_snapshot_pair` *detects* a breach; its companion
:func:`repair_snapshot_pair` *projects* the later snapshot onto the
nearest valid superset of the earlier one — restoring every deleted node
and edge and clamping every increased weight — and reports exactly what
it changed.  Repair is the "the stream had a deletion but the sweep must
go on" escape hatch used by ``ConvergenceMonitor`` under
``on_invalid_window="repair"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Tuple

from repro.graph.graph import Graph

Node = Hashable


class GraphValidationError(ValueError):
    """Raised when a graph or snapshot pair violates problem assumptions."""


def check_simple(graph: Graph) -> None:
    """Verify the graph is simple with positive weights.

    :class:`~repro.graph.graph.Graph` enforces this on construction; the
    check exists to guard graphs deserialised or built through internal
    state by power users.
    """
    for u, v, w in graph.weighted_edges():
        if u == v:
            raise GraphValidationError(f"self loop at node {u!r}")
        if w <= 0:
            raise GraphValidationError(
                f"non-positive weight {w} on edge ({u!r}, {v!r})"
            )


def check_snapshot_pair(g1: Graph, g2: Graph) -> None:
    """Verify ``g1`` is a (weight-non-increasing) subgraph of ``g2``.

    Raises
    ------
    GraphValidationError
        If a node or edge of ``g1`` is missing from ``g2``, or an edge got
        *heavier* in ``g2`` (which could make distances increase and break
        the non-negativity of the convergence score).
    """
    for u in g1.nodes():
        if u not in g2:
            raise GraphValidationError(
                f"node {u!r} present at t1 but missing at t2 "
                "(the model is insertion-only)"
            )
    for u, v, w1 in g1.weighted_edges():
        if not g2.has_edge(u, v):
            raise GraphValidationError(
                f"edge ({u!r}, {v!r}) present at t1 but missing at t2 "
                "(the model is insertion-only)"
            )
        w2 = g2.weight(u, v)
        if w2 > w1:
            raise GraphValidationError(
                f"edge ({u!r}, {v!r}) weight increased {w1} -> {w2}; "
                "distances must be non-increasing"
            )


@dataclass
class SnapshotRepair:
    """What :func:`repair_snapshot_pair` changed to make a pair valid.

    Empty lists (``clean`` is True) mean the pair already satisfied
    :func:`check_snapshot_pair` and the returned graph is an untouched
    copy of ``g2``.
    """

    restored_nodes: List[Node] = field(default_factory=list)
    restored_edges: List[Tuple[Node, Node, float]] = field(
        default_factory=list
    )
    clamped_weights: List[Tuple[Node, Node, float, float]] = field(
        default_factory=list
    )

    @property
    def clean(self) -> bool:
        """True if no change was needed."""
        return not (self.restored_nodes or self.restored_edges
                    or self.clamped_weights)

    def summary(self) -> str:
        """One-line human description of the applied changes."""
        if self.clean:
            return "snapshot pair already valid; no repair applied"
        parts = []
        if self.restored_nodes:
            parts.append(f"restored {len(self.restored_nodes)} node(s)")
        if self.restored_edges:
            parts.append(f"restored {len(self.restored_edges)} edge(s)")
        if self.clamped_weights:
            parts.append(
                f"clamped {len(self.clamped_weights)} weight(s)"
            )
        return "repaired snapshot pair: " + ", ".join(parts)


def repair_snapshot_pair(g1: Graph, g2: Graph) -> Tuple[Graph, SnapshotRepair]:
    """Project ``g2`` onto the nearest valid superset of ``g1``.

    The returned graph is a copy of ``g2`` in which every node and edge
    of ``g1`` missing from ``g2`` has been restored (edges with their
    ``g1`` weight) and every edge that got *heavier* has been clamped
    back to its ``g1`` weight.  The companion :class:`SnapshotRepair`
    lists each change, so callers can log precisely how far the stream
    strayed from the insertion-only model.  ``g1`` and ``g2`` are never
    mutated, and ``check_snapshot_pair(g1, repaired)`` always passes.
    """
    repaired = g2.copy()
    report = SnapshotRepair()
    for u in g1.nodes():
        if u not in repaired:
            repaired.add_node(u)
            report.restored_nodes.append(u)
    for u, v, w1 in g1.weighted_edges():
        if not repaired.has_edge(u, v):
            repaired.add_edge(u, v, w1)
            report.restored_edges.append((u, v, w1))
            continue
        w2 = repaired.weight(u, v)
        if w2 > w1:
            repaired.add_edge(u, v, w1)  # re-add overwrites the weight
            report.clamped_weights.append((u, v, w2, w1))
    return repaired, report
