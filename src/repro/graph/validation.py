"""Structural validation for snapshot pairs.

The problem definition silently assumes several structural facts:
``G_t1`` is a subgraph of ``G_t2`` (insertion-only evolution), both are
simple undirected graphs, and edge weights never increase.  Violating any
of these makes "distance decrease" meaningless, so the public entry points
validate their inputs eagerly with these helpers instead of producing
garbage rankings.
"""

from __future__ import annotations

from repro.graph.graph import Graph


class GraphValidationError(ValueError):
    """Raised when a graph or snapshot pair violates problem assumptions."""


def check_simple(graph: Graph) -> None:
    """Verify the graph is simple with positive weights.

    :class:`~repro.graph.graph.Graph` enforces this on construction; the
    check exists to guard graphs deserialised or built through internal
    state by power users.
    """
    for u, v, w in graph.weighted_edges():
        if u == v:
            raise GraphValidationError(f"self loop at node {u!r}")
        if w <= 0:
            raise GraphValidationError(
                f"non-positive weight {w} on edge ({u!r}, {v!r})"
            )


def check_snapshot_pair(g1: Graph, g2: Graph) -> None:
    """Verify ``g1`` is a (weight-non-increasing) subgraph of ``g2``.

    Raises
    ------
    GraphValidationError
        If a node or edge of ``g1`` is missing from ``g2``, or an edge got
        *heavier* in ``g2`` (which could make distances increase and break
        the non-negativity of the convergence score).
    """
    for u in g1.nodes():
        if u not in g2:
            raise GraphValidationError(
                f"node {u!r} present at t1 but missing at t2 "
                "(the model is insertion-only)"
            )
    for u, v, w1 in g1.weighted_edges():
        if not g2.has_edge(u, v):
            raise GraphValidationError(
                f"edge ({u!r}, {v!r}) present at t1 but missing at t2 "
                "(the model is insertion-only)"
            )
        w2 = g2.weight(u, v)
        if w2 > w1:
            raise GraphValidationError(
                f"edge ({u!r}, {v!r}) weight increased {w1} -> {w2}; "
                "distances must be non-increasing"
            )
