"""Structural statistics: clustering, degree distributions, assortativity.

These are not used by the paper's algorithms; they exist to *calibrate*
the synthetic dataset analogues against their real counterparts' known
regimes (collaboration graphs have high clustering because teams project
to cliques; the AS graph is disassortative because stubs attach to hubs;
preferential attachment yields heavy-tailed degrees).  The calibration
tests in ``tests/test_datasets_regimes.py`` assert exactly those facts.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph

Node = Hashable


def local_clustering(graph: Graph, node: Node) -> float:
    """Fraction of a node's neighbor pairs that are themselves connected.

    0.0 for nodes of degree < 2 (no neighbor pairs to close).
    """
    neighbors = list(graph.neighbors(node))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        # Iterate over the smaller adjacency for each pair check.
        for v in graph.neighbors(u):
            if v in neighbor_set and repr(v) > repr(u):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all nodes (0 if empty)."""
    if graph.num_nodes == 0:
        return 0.0
    total = sum(local_clustering(graph, u) for u in graph.nodes())
    return total / graph.num_nodes


def transitivity(graph: Graph) -> float:
    """Global clustering: ``3 * triangles / open-or-closed triads``."""
    triangles = 0
    triads = 0
    for u in graph.nodes():
        k = graph.degree(u)
        triads += k * (k - 1) // 2
        neighbors = set(graph.neighbors(u))
        for v in neighbors:
            # Count each triangle at each of its three corners once.
            for w in graph.neighbors(v):
                if w in neighbors and repr(w) > repr(v):
                    triangles += 1
    if triads == 0:
        return 0.0
    # Each triangle was counted once per corner = 3 times total.
    return triangles / triads


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Mapping of degree value to node count."""
    return dict(Counter(graph.degrees().values()))


def degree_gini(graph: Graph) -> float:
    """Gini coefficient of the degree distribution (0 = uniform).

    A scale-free-ish graph (preferential attachment) scores well above a
    near-regular one; the regime tests use this as a heavy-tail proxy
    that is more robust than fitting a power-law exponent at small n.
    """
    degrees = np.array(sorted(graph.degrees().values()), dtype=float)
    n = degrees.size
    if n == 0 or degrees.sum() == 0:
        return 0.0
    cum = np.cumsum(degrees)
    # Standard Gini formula on sorted values.
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def degree_assortativity(graph: Graph) -> Optional[float]:
    """Pearson correlation of degrees across edges.

    Negative for hub-and-spoke topologies (AS graph), positive for
    social/collaboration graphs.  ``None`` when undefined (fewer than
    2 edges, or zero variance).
    """
    xs = []
    ys = []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        # Count each edge in both orientations so the measure is
        # symmetric (the standard convention).
        xs.extend((du, dv))
        ys.extend((dv, du))
    if len(xs) < 4:
        return None
    x = np.array(xs, dtype=float)
    y = np.array(ys, dtype=float)
    if x.std() == 0 or y.std() == 0:
        return None
    return float(np.corrcoef(x, y)[0, 1])


def summary(graph: Graph) -> Dict[str, float]:
    """One-call structural fingerprint used by the calibration tests."""
    assort = degree_assortativity(graph)
    return {
        "nodes": float(graph.num_nodes),
        "edges": float(graph.num_edges),
        "density": graph.density(),
        "max_degree": float(graph.max_degree()),
        "average_clustering": average_clustering(graph),
        "transitivity": transitivity(graph),
        "degree_gini": degree_gini(graph),
        "degree_assortativity": float("nan") if assort is None else assort,
    }
