"""Compressed-sparse-row graph representation with vectorised BFS.

The dict-of-dict :class:`~repro.graph.graph.Graph` is the right mutable
structure for building snapshots, but the ground-truth pass — one BFS
pair per node — dominates the experiment suite's runtime.  This module
provides a frozen, integer-indexed CSR view and a numpy frontier BFS
that expands whole levels at once, cutting the per-BFS constant by an
order of magnitude on the catalog graphs.

The CSR layer is an *accelerator*, not a second graph API: results are
bit-identical to the dict BFS (the equivalence tests enforce this), and
:mod:`repro.core.pairs` switches to it automatically for unweighted
graphs.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.graph.graph import Graph

Node = Hashable

#: Level value marking "not reached" in BFS level arrays.
UNREACHED = -1


class CSRGraph:
    """A frozen CSR adjacency over an ordered node list.

    Attributes
    ----------
    nodes:
        The node universe, in index order.
    index:
        ``node -> integer index`` map.
    indptr / indices:
        Standard CSR: the neighbors of node ``i`` are
        ``indices[indptr[i]:indptr[i + 1]]``.
    """

    __slots__ = ("nodes", "index", "indptr", "indices")

    def __init__(
        self, nodes: List[Node], indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        self.nodes = nodes
        self.index: Dict[Node, int] = {u: i for i, u in enumerate(nodes)}
        self.indptr = indptr
        self.indices = indices

    @classmethod
    def from_graph(
        cls, graph: Graph, nodes: Optional[Sequence[Node]] = None
    ) -> "CSRGraph":
        """Freeze a :class:`Graph` into CSR form.

        ``nodes`` optionally fixes the index order / universe (defaults
        to the graph's insertion order).  Every listed node must exist in
        the graph; neighbors outside the universe are dropped, which
        supports building a ``G_t2`` view restricted to ``V_t1``.
        """
        node_list = list(nodes) if nodes is not None else list(graph.nodes())
        index = {u: i for i, u in enumerate(node_list)}
        if len(index) != len(node_list):
            raise ValueError("duplicate nodes in CSR universe")
        counts = np.zeros(len(node_list) + 1, dtype=np.int64)
        rows: List[np.ndarray] = []
        for i, u in enumerate(node_list):
            nbrs = [index[v] for v in graph.neighbors(u) if v in index]
            nbrs.sort()
            counts[i + 1] = len(nbrs)
            rows.append(np.array(nbrs, dtype=np.int32))
        indptr = np.cumsum(counts)
        indices = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int32)
        ).astype(np.int32)
        return cls(node_list, indptr, indices)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the universe."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (within the universe)."""
        return int(self.indices.size) // 2

    def neighbors_of(self, idx: int) -> np.ndarray:
        """Neighbor index array of node index ``idx``."""
        return self.indices[self.indptr[idx] : self.indptr[idx + 1]]


def _multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for every (s, c) pair, vectorised.

    The classic cumsum trick; zero-count entries must be filtered out by
    the caller.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(counts[:-1])
    out[boundaries] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(out)


def bfs_levels(csr: CSRGraph, source_idx: int) -> np.ndarray:
    """Hop levels from a source index; ``UNREACHED`` where disconnected.

    Expands one whole BFS level per iteration using vectorised gathers,
    so the Python-level loop runs ``O(diameter)`` times instead of
    ``O(n)``.
    """
    n = csr.num_nodes
    if not 0 <= source_idx < n:
        raise IndexError(f"source index {source_idx} out of range [0, {n})")
    levels = np.full(n, UNREACHED, dtype=np.int32)
    levels[source_idx] = 0
    frontier = np.array([source_idx], dtype=np.int64)
    depth = 0
    indptr, indices = csr.indptr, csr.indices
    while frontier.size:
        depth += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nonzero = counts > 0
        if not nonzero.any():
            break
        gather = _multi_arange(starts[nonzero], counts[nonzero])
        neighbors = indices[gather]
        fresh = neighbors[levels[neighbors] == UNREACHED]
        if fresh.size == 0:
            break
        levels[fresh] = depth
        frontier = np.flatnonzero(levels == depth)
    return levels


def bfs_distances_fast(graph: Graph, source: Node) -> Dict[Node, int]:
    """Drop-in :func:`repro.graph.traversal.bfs_distances` replacement.

    Freezes the graph, runs the vectorised BFS, and returns the same
    reachable-only dict.  Only worth it when the CSR view is reused; for
    one-off queries the conversion dominates, so the traversal module's
    dict BFS remains the default.
    """
    csr = CSRGraph.from_graph(graph)
    levels = bfs_levels(csr, csr.index[source])
    reached = np.flatnonzero(levels != UNREACHED)
    return {csr.nodes[i]: int(levels[i]) for i in reached}


def _levels_row_task(i: int) -> np.ndarray:
    """Worker task: one BFS level row against the installed CSR view."""
    from repro.parallel import worker_state

    return bfs_levels(worker_state()["csr"], i)


def _levels_block_task(span: "tuple[int, int]") -> np.ndarray:
    """Worker task: a contiguous block of level rows via multi-source BFS.

    Reads the shared CSR view (attached, not unpickled, when the arena
    is active) and advances the whole ``[start, stop)`` source span with
    bit-packed frontiers.
    """
    from repro.graph.msbfs import msbfs_levels
    from repro.parallel import worker_state

    state = worker_state()
    start, stop = span
    return msbfs_levels(
        state["csr"], range(start, stop), batch_size=state["batch"]
    )


def all_sources_levels(csr: CSRGraph, workers: int = 1) -> np.ndarray:
    """Dense all-pairs level matrix (``UNREACHED`` off-component).

    ``O(n)`` memory per row is materialised all at once — intended for
    the catalog-scale ground-truth pass, not million-node graphs.  Rows
    advance through the bit-parallel multi-source kernel
    (:func:`repro.graph.msbfs.msbfs_levels`, 64 sources per sweep);
    ``workers > 1`` fans contiguous source spans across a process pool
    whose workers attach the CSR arrays from a shared-memory arena.  The
    matrix is bit-identical at any worker count and batch width.
    """
    from repro.graph.msbfs import DEFAULT_BATCH, msbfs_levels

    n = csr.num_nodes
    if n == 0:
        return np.empty((0, 0), dtype=np.int32)
    if workers > 1:
        from repro.parallel import ParallelExecutor, derive_run_id

        spans = [
            (start, min(start + DEFAULT_BATCH, n))
            for start in range(0, n, DEFAULT_BATCH)
        ]
        executor = ParallelExecutor(
            workers,
            state={"csr": csr, "batch": DEFAULT_BATCH},
            shm_run_id=derive_run_id(
                "apsp.levels", n, int(csr.indices.size), DEFAULT_BATCH
            ),
        )
        blocks = executor.map(_levels_block_task, spans, unit="apsp.levels")
        return np.concatenate(blocks, axis=0)
    return msbfs_levels(csr, range(n), batch_size=DEFAULT_BATCH)
