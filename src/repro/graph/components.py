"""Connected-component utilities.

The top-k converging pairs problem is defined over pairs *connected in the
first snapshot* (disconnected pairs have infinite distance, so "converging"
degenerates to "became connected", which the paper excludes).  These
helpers identify components, restrict graphs to their giant component, and
answer same-component queries in O(1) after one linear pass.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Set

from repro.graph.graph import Graph

Node = Hashable


def connected_components(graph: Graph) -> List[Set[Node]]:
    """All connected components, largest first (ties broken arbitrarily).

    Iterative BFS, so arbitrarily deep graphs don't hit the recursion
    limit.  Runs in ``O(n + m)``.
    """
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for root in graph.nodes():
        if root in seen:
            continue
        comp = {root}
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in comp:
                    comp.add(v)
                    queue.append(v)
        seen |= comp
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> Set[Node]:
    """Node set of the largest connected component (empty set if no nodes)."""
    comps = connected_components(graph)
    return comps[0] if comps else set()


def component_membership(graph: Graph) -> Dict[Node, int]:
    """Map each node to a component index (0 = largest component)."""
    membership: Dict[Node, int] = {}
    for idx, comp in enumerate(connected_components(graph)):
        for u in comp:
            membership[u] = idx
    return membership


def is_connected(graph: Graph) -> bool:
    """True if the graph has exactly one component (empty graph: False)."""
    if graph.num_nodes == 0:
        return False
    return len(largest_component(graph)) == graph.num_nodes


def same_component(membership: Dict[Node, int], u: Node, v: Node) -> bool:
    """O(1) same-component query against a precomputed membership map."""
    cu = membership.get(u)
    return cu is not None and cu == membership.get(v)


def count_disconnected_pairs(graph: Graph) -> int:
    """Number of unordered node pairs in *different* components.

    This is the "not-connected" column of the paper's Table 2.  Computed
    from component sizes in ``O(n + m)``:
    ``C(n, 2) - sum_i C(|comp_i|, 2)``.
    """
    n = graph.num_nodes
    total = n * (n - 1) // 2
    within = sum(len(c) * (len(c) - 1) // 2 for c in connected_components(graph))
    return total - within
