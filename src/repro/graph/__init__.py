"""Graph substrate: static graphs, temporal streams, traversals, distances.

This subpackage is the foundation everything else in :mod:`repro` is built
on.  It deliberately avoids any third-party graph library: the paper's
algorithms only need a compact undirected graph with fast neighbor
iteration, BFS/Dijkstra single-source shortest paths, connected components,
all-pairs distances for ground truth, landmark distance tables, and Brandes
betweenness for the Incidence baseline.  All of that lives here.
"""

from repro.graph.graph import Graph
from repro.graph.dynamic import EdgeEvent, TemporalGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_distances_bounded,
    bfs_distances_many,
    bfs_tree,
    bidirectional_bfs,
    dijkstra_distances,
    dijkstra_tree,
    reconstruct_path,
    shortest_path_length,
    single_source_distances,
)
from repro.graph.components import (
    connected_components,
    largest_component,
    component_membership,
    is_connected,
    same_component,
)
from repro.graph.apsp import (
    DistanceMatrix,
    all_pairs_distances,
    diameter,
    eccentricities,
)
from repro.graph.landmarks import (
    LandmarkTable,
    landmark_delta_vectors,
    landmark_distance_table,
)
from repro.graph.csr import (
    CSRGraph,
    all_sources_levels,
    bfs_distances_fast,
    bfs_levels,
)
from repro.graph.msbfs import iter_msbfs_rows, msbfs_levels
from repro.graph.incremental import (
    SnapshotDelta,
    levels_pair,
    levels_pair_indexed,
    repair_levels,
)
from repro.graph.prune import (
    KthTracker,
    PrunePlan,
    PruneStats,
    bounded_bfs_levels,
    source_bound,
)
from repro.graph.stats import (
    average_clustering,
    degree_assortativity,
    degree_gini,
    degree_histogram,
    local_clustering,
    transitivity,
)
from repro.graph.betweenness import (
    edge_betweenness,
    node_betweenness,
    approximate_edge_betweenness,
)
from repro.graph.validation import (
    GraphValidationError,
    SnapshotRepair,
    check_snapshot_pair,
    check_simple,
    repair_snapshot_pair,
)

__all__ = [
    "Graph",
    "EdgeEvent",
    "TemporalGraph",
    "bfs_distances",
    "bfs_distances_bounded",
    "bfs_distances_many",
    "bfs_tree",
    "bidirectional_bfs",
    "dijkstra_distances",
    "dijkstra_tree",
    "reconstruct_path",
    "shortest_path_length",
    "single_source_distances",
    "connected_components",
    "largest_component",
    "component_membership",
    "is_connected",
    "same_component",
    "DistanceMatrix",
    "all_pairs_distances",
    "diameter",
    "eccentricities",
    "LandmarkTable",
    "landmark_delta_vectors",
    "landmark_distance_table",
    "CSRGraph",
    "all_sources_levels",
    "bfs_distances_fast",
    "bfs_levels",
    "iter_msbfs_rows",
    "msbfs_levels",
    "SnapshotDelta",
    "levels_pair",
    "levels_pair_indexed",
    "repair_levels",
    "KthTracker",
    "PrunePlan",
    "PruneStats",
    "bounded_bfs_levels",
    "source_bound",
    "average_clustering",
    "degree_assortativity",
    "degree_gini",
    "degree_histogram",
    "local_clustering",
    "transitivity",
    "edge_betweenness",
    "node_betweenness",
    "approximate_edge_betweenness",
    "GraphValidationError",
    "SnapshotRepair",
    "check_snapshot_pair",
    "check_simple",
    "repair_snapshot_pair",
]
