"""Landmark distance tables and snapshot-to-snapshot delta vectors.

The landmark-based selectors (SumDiff, MaxDiff and the four hybrids)
associate each node ``u`` with two l-dimensional vectors
``DL1(u)[i] = d_t1(u, w_i)`` and ``DL2(u)[i] = d_t2(u, w_i)`` over an
ordered landmark set ``L = (w_1, ..., w_l)``, and rank nodes by a norm of
the per-landmark decrease ``DL1(u) - DL2(u)`` (clamped at 0 — distances
cannot increase under edge insertions, and nodes unreachable from a
landmark in either snapshot contribute 0 for that landmark).

Each landmark costs exactly one SSSP per snapshot, which is how the
paper's budget accounting charges 2l to the landmark phase.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import single_source_distances

Node = Hashable


class LandmarkTable:
    """Distances from an ordered landmark set to a node universe.

    Attributes
    ----------
    landmarks:
        The ordered landmark tuple ``(w_1, ..., w_l)``.
    nodes:
        The node universe (rows of :attr:`matrix` align with it).
    matrix:
        ``float32`` array of shape ``(len(nodes), l)``; ``inf`` marks a
        node unreachable from that landmark.
    """

    def __init__(
        self, landmarks: Sequence[Node], nodes: Sequence[Node], matrix: np.ndarray
    ) -> None:
        if matrix.shape != (len(nodes), len(landmarks)):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match "
                f"({len(nodes)} nodes, {len(landmarks)} landmarks)"
            )
        self.landmarks: List[Node] = list(landmarks)
        self.nodes: List[Node] = list(nodes)
        self.index: Dict[Node, int] = {u: i for i, u in enumerate(self.nodes)}
        self.matrix = matrix

    @property
    def num_landmarks(self) -> int:
        """Number of landmarks l."""
        return len(self.landmarks)

    def vector(self, u: Node) -> np.ndarray:
        """The l-dimensional landmark distance vector of ``u``."""
        return self.matrix[self.index[u]]

    def estimate_distance(self, u: Node, v: Node) -> float:
        """Triangle-inequality upper bound ``min_i d(u,w_i) + d(w_i,v)``.

        Not used by the paper's selectors (they rank on *changes*), but a
        standard landmark application worth exposing; also exercised by
        the test suite as a sanity invariant.
        """
        est = self.matrix[self.index[u]] + self.matrix[self.index[v]]
        return float(est.min()) if est.size else float("inf")


def landmark_distance_table(
    graph: Graph,
    landmarks: Sequence[Node],
    nodes: Sequence[Node],
) -> LandmarkTable:
    """Build a :class:`LandmarkTable` with one SSSP per landmark.

    Landmarks absent from ``graph`` yield an all-``inf`` column (this can
    happen legitimately: dispersion-selected landmarks always exist in
    ``G_t1``, but a caller probing an arbitrary landmark list should not
    crash).
    """
    node_list = list(nodes)
    index = {u: i for i, u in enumerate(node_list)}
    matrix = np.full((len(node_list), len(landmarks)), np.inf, dtype=np.float32)
    for j, w in enumerate(landmarks):
        if w not in graph:
            continue
        dist = single_source_distances(graph, w)
        for v, d in dist.items():
            i = index.get(v)
            if i is not None:
                matrix[i, j] = d
    return LandmarkTable(landmarks, node_list, matrix)


def landmark_delta_vectors(
    table1: LandmarkTable, table2: LandmarkTable
) -> np.ndarray:
    """Per-node, per-landmark distance *decreases* between two snapshots.

    ``table1``/``table2`` must share landmarks and node universe.  Entries
    where either snapshot has no finite distance contribute 0 (no measured
    change); negative raw deltas — impossible for true subgraph snapshots
    but conceivable with approximate inputs — are clamped to 0.
    """
    if table1.landmarks != table2.landmarks:
        raise ValueError("landmark sets differ between snapshots")
    if table1.nodes != table2.nodes:
        raise ValueError("node universes differ between snapshots")
    finite = np.isfinite(table1.matrix) & np.isfinite(table2.matrix)
    with np.errstate(invalid="ignore"):
        delta = np.where(finite, table1.matrix - table2.matrix, 0.0)
    return np.maximum(delta, 0.0).astype(np.float32)


def delta_l1_norms(delta: np.ndarray) -> np.ndarray:
    """Row-wise L1 norms of a delta matrix (the SumDiff score)."""
    return delta.sum(axis=1)


def delta_linf_norms(delta: np.ndarray) -> np.ndarray:
    """Row-wise L-infinity norms of a delta matrix (the MaxDiff score)."""
    if delta.shape[1] == 0:
        return np.zeros(delta.shape[0], dtype=np.float32)
    return delta.max(axis=1)
