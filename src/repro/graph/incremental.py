"""Incremental delta-BFS: repair ``G_t1`` levels into exact ``G_t2`` levels.

Every charged source in the budgeted pipeline needs *two* BFS rows — one
per snapshot — and until now paid two independent traversals for them.
But the problem model guarantees ``G_t1 ⊆ G_t2`` (insertion-only
evolution), so hop levels can only *decrease* from t1 to t2, and they
only decrease for nodes whose new shortest path crosses at least one
inserted edge.  This module exploits that: given the t1 level array of a
source, it *repairs* it into the exact t2 level array by seeding a
frontier from the endpoints of the inserted edges (plus the new nodes
reachable only through them) and relaxing just the affected region.

The machinery is three pieces:

* :class:`SnapshotDelta` — the precomputed difference between two
  snapshots: both CSR views, the t1 → t2 index alignment, and the
  inserted-edge endpoint arrays.  Built once per snapshot pair and
  reused for every source (and shipped to parallel workers once per
  pool, not per source).
* :func:`repair_levels` — the repair kernel: monotone bucketed
  relaxation over the t2 adjacency, vectorised one frontier level at a
  time like :func:`repro.graph.csr.bfs_levels`, with early termination
  as soon as no remaining node can still improve.
* :func:`levels_pair` / :func:`levels_pair_indexed` — the public entry
  points: both level arrays of one source from a single traversal plus
  a repair.

Exactness is the contract: the repaired array is **bit-identical** to an
independent full BFS on ``G_t2`` (the differential tests pin this
against the dict engine and networkx).  Budget semantics do not change
either — a repaired t2 traversal still *charges* as one SSSP, because
the paper's budget is denominated in SSSP results obtained, not in
edges scanned (see docs/budget-model.md and the R004 note in
docs/static-analysis.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, UNREACHED, _multi_arange, bfs_levels
from repro.graph.graph import Graph

Node = Hashable


@dataclass(frozen=True)
class SnapshotDelta:
    """The precomputed difference between an insertion-only snapshot pair.

    Attributes
    ----------
    csr1 / csr2:
        Frozen CSR views of ``G_t1`` and ``G_t2`` (``csr2`` covers the
        full t2 universe, new nodes included).
    mapping:
        ``csr1 index -> csr2 index`` alignment array: ``levels2[mapping]``
        re-orders a t2 level array onto t1's node order.
    new_nodes:
        csr2 indices of nodes absent from ``G_t1``.
    edge_tails / edge_heads:
        csr2 endpoint indices of every inserted edge, listed in both
        orientations (so one scan seeds repairs in either direction).
    """

    csr1: CSRGraph
    csr2: CSRGraph
    mapping: np.ndarray
    new_nodes: np.ndarray
    edge_tails: np.ndarray
    edge_heads: np.ndarray
    seed_heads: np.ndarray
    seed_tails: np.ndarray
    seed_starts: np.ndarray

    @classmethod
    def from_graphs(cls, g1: Graph, g2: Graph) -> "SnapshotDelta":
        """Build the delta for a snapshot pair, validating ``G_t1 ⊆ G_t2``.

        The subgraph check is a hard precondition, not an optional
        validation: repair starts from the t1 levels and only ever
        lowers them, which is exact if and only if every t1 node and
        edge survives into t2.
        """
        csr1 = CSRGraph.from_graph(g1)
        csr2 = CSRGraph.from_graph(g2)
        index2 = csr2.index
        for u in csr1.nodes:
            if u not in index2:
                raise ValueError(
                    f"node {u!r} present at t1 but missing at t2: "
                    "G_t1 is not a subgraph of G_t2 "
                    "(run check_snapshot_pair for details)"
                )
        mapping = np.array([index2[u] for u in csr1.nodes], dtype=np.int64)
        is_old = np.zeros(csr2.num_nodes, dtype=bool)
        is_old[mapping] = True
        new_nodes = np.flatnonzero(~is_old)
        tails: List[int] = []
        heads: List[int] = []
        for u, v in g2.edges():
            if g1.has_edge(u, v):
                continue
            iu, iv = index2[u], index2[v]
            tails.append(iu)
            heads.append(iv)
        for u, v in g1.edges():
            if not g2.has_edge(u, v):
                raise ValueError(
                    f"edge ({u!r}, {v!r}) present at t1 but missing at t2: "
                    "G_t1 is not a subgraph of G_t2 "
                    "(run check_snapshot_pair for details)"
                )
        edge_tails = np.array(tails + heads, dtype=np.int64)
        edge_heads = np.array(heads + tails, dtype=np.int64)
        # Seed reduction layout: inserted-edge endpoints sorted by head,
        # so every repair can take the per-head minimum candidate level
        # with one C-speed ``minimum.reduceat`` instead of a slow
        # ``minimum.at`` scatter.
        if edge_heads.size:
            order = np.argsort(edge_heads, kind="stable")
            sorted_heads = edge_heads[order]
            boundary = np.flatnonzero(
                np.diff(sorted_heads, prepend=sorted_heads[0] - 1)
            )
            seed_heads = sorted_heads[boundary]
            seed_tails = edge_tails[order]
            seed_starts = boundary
        else:
            seed_heads = np.empty(0, dtype=np.int64)
            seed_tails = np.empty(0, dtype=np.int64)
            seed_starts = np.empty(0, dtype=np.int64)
        return cls(
            csr1=csr1,
            csr2=csr2,
            mapping=mapping,
            new_nodes=new_nodes,
            edge_tails=edge_tails,
            edge_heads=edge_heads,
            seed_heads=seed_heads,
            seed_tails=seed_tails,
            seed_starts=seed_starts,
        )

    @property
    def num_new_edges(self) -> int:
        """Number of undirected edges inserted between the snapshots."""
        return int(self.edge_tails.size) // 2

    @property
    def num_new_nodes(self) -> int:
        """Number of nodes that appear only in ``G_t2``."""
        return int(self.new_nodes.size)

    def source_index(self, source: Node) -> Optional[int]:
        """The source's csr1 index, or ``None`` for a t2-only node."""
        return self.csr1.index.get(source)


def repair_levels(
    delta: SnapshotDelta,
    levels1: np.ndarray,
    max_level: Optional[int] = None,
) -> np.ndarray:
    """Exact ``G_t2`` levels from a source's ``G_t1`` level array.

    ``levels1`` is the t1 level array over ``delta.csr1``'s universe
    (any integer dtype; ``UNREACHED`` where disconnected).  The returned
    array covers ``delta.csr2``'s universe with dtype ``int32`` and is
    bit-identical to ``bfs_levels(delta.csr2, source_idx2)``.

    The repair seeds a frontier from the inserted-edge endpoints
    (the only places a shorter t2 path can originate), then relaxes one
    level bucket at a time in increasing order over the full t2
    adjacency — so improvements propagate through old edges too — and
    stops as soon as no remaining node's level exceeds the frontier's
    best achievable level.  Cost is proportional to the affected region,
    not to the whole graph.

    ``max_level`` cuts the relaxation inside the affected region: the
    frontier loop stops once it would assign levels beyond the cut, so
    every returned value ≤ ``max_level`` is still exact (the limited run
    performs iterations identical to the unlimited one up to that depth)
    while deeper nodes may keep their — larger — t1 levels.  Used by the
    Δ-pruned engines (:mod:`repro.graph.prune`): targets beyond
    ``ecc1 − θ`` cannot reach ``Δ ≥ θ``, and an un-repaired node repairs
    to ``Δ = 0``, which no threshold collects.  ``None`` preserves the
    exact, bit-identical behaviour.
    """
    n1 = delta.csr1.num_nodes
    n2 = delta.csr2.num_nodes
    if levels1.shape != (n1,):
        raise ValueError(
            f"levels1 has shape {levels1.shape}, expected ({n1},)"
        )
    inf = n2  # BFS levels are < n2, so n2 is a safe "unreached" sentinel.
    dist = np.full(n2, inf, dtype=np.int32)
    dist[delta.mapping] = levels1
    dist[dist == UNREACHED] = inf  # t1-unreached old nodes
    if not delta.seed_heads.size:
        dist[dist == inf] = UNREACHED
        return dist

    # Early-termination bound: a frontier at level d assigns d + 1, which
    # can only improve nodes still above d + 1.  Levels never increase,
    # so the largest *initial* level (the sentinel, if anything starts
    # unreached) bounds every level that could still be improved.
    max_init = int(dist.max())

    # Seed: the best candidate level each inserted-edge head can get from
    # its tail's t1 level (per-head minimum over the presorted segments).
    # Tails at `inf` produce candidates above the sentinel and never win.
    mins = np.minimum.reduceat(dist[delta.seed_tails] + 1, delta.seed_starts)
    better = mins < dist[delta.seed_heads]
    if not better.any():
        dist[dist == inf] = UNREACHED
        return dist
    seeds = delta.seed_heads[better]
    seed_levels = mins[better]
    dist[seeds] = seed_levels

    # `stamp[v]` is the level at which v most recently improved; scanning
    # ``stamp == d`` recovers the level-d frontier with duplicates (and
    # nodes later re-improved to a lower level) collapsed for free.
    stamp = np.full(n2, UNREACHED, dtype=np.int32)
    stamp[seeds] = seed_levels
    d = int(seed_levels.min())
    max_pending = int(seed_levels.max())
    indptr, indices = delta.csr2.indptr, delta.csr2.indices
    while (
        d <= max_pending
        and d + 1 < max_init
        and (max_level is None or d + 1 <= max_level)
    ):
        frontier = np.flatnonzero(stamp == d)
        d += 1
        if frontier.size == 0:
            continue
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nonzero = counts > 0
        if not nonzero.any():
            continue
        gather = _multi_arange(starts[nonzero], counts[nonzero])
        neighbors = indices[gather]
        improved = neighbors[dist[neighbors] > d]
        if improved.size:
            dist[improved] = d
            stamp[improved] = d
            if d > max_pending:
                max_pending = d

    dist[dist == inf] = UNREACHED
    return dist


def levels_pair_indexed(
    delta: SnapshotDelta, source_idx1: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Both snapshots' level arrays of csr1-source ``source_idx1``.

    Returns ``(levels1, levels2)`` — ``levels1`` over ``csr1``'s
    universe from one full traversal, ``levels2`` over ``csr2``'s
    universe from the repair.  Align the latter onto t1's node order
    with ``levels2[delta.mapping]`` when comparing rows.
    """
    levels1 = bfs_levels(delta.csr1, source_idx1)
    return levels1, repair_levels(delta, levels1)


def levels_pair(
    g1: Graph,
    g2: Graph,
    source: Node,
    delta: Optional[SnapshotDelta] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Both snapshots' level arrays of ``source`` from one traversal + repair.

    ``delta`` amortises the snapshot-difference precomputation across
    sources; omit it for one-off queries.  A source that only exists in
    ``G_t2`` has no t1 row to repair, so it returns an all-``UNREACHED``
    t1 array and pays a full t2 traversal — the worst-case fallback.
    """
    if delta is None:
        delta = SnapshotDelta.from_graphs(g1, g2)
    idx1 = delta.source_index(source)
    if idx1 is not None:
        return levels_pair_indexed(delta, idx1)
    idx2 = delta.csr2.index.get(source)
    if idx2 is None:
        raise KeyError(f"source {source!r} not in either snapshot")
    levels1 = np.full(delta.csr1.num_nodes, UNREACHED, dtype=np.int32)
    return levels1, bfs_levels(delta.csr2, idx2)
