"""All-pairs shortest paths, eccentricities, and diameter.

Exact APSP is only used to compute *ground truth* (the true top-k
converging pairs and the paper's Table 2/3 characteristics) on the
manageable-size datasets — exactly as the paper does for its evaluation.
The production algorithms never touch it; they live under the SSSP budget.

:class:`DistanceMatrix` packs the n x n distance table into a dense numpy
``float32`` array (``inf`` for unreachable) with a node-index map, so the
ground-truth pass over millions of pairs is vectorised.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances, dijkstra_distances
from repro.parallel import ParallelExecutor, worker_state

Node = Hashable


class DistanceMatrix:
    """Dense all-pairs distance table over an ordered node list.

    Parameters
    ----------
    nodes:
        The ordered node universe of the matrix (typically ``G_t1``'s
        nodes — the problem only scores pairs that exist at ``t1``).
    matrix:
        ``float32`` array of shape ``(len(nodes), len(nodes))`` where
        entry ``(i, j)`` is the distance and ``inf`` marks unreachable.
    """

    def __init__(self, nodes: Sequence[Node], matrix: np.ndarray) -> None:
        n = len(nodes)
        if matrix.shape != (n, n):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {n} nodes"
            )
        self.nodes: List[Node] = list(nodes)
        self.index: Dict[Node, int] = {u: i for i, u in enumerate(self.nodes)}
        if len(self.index) != n:
            raise ValueError("duplicate nodes in DistanceMatrix universe")
        self.matrix = matrix

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, u: Node) -> bool:
        return u in self.index

    def distance(self, u: Node, v: Node) -> float:
        """Distance between ``u`` and ``v`` (``inf`` if unreachable)."""
        return float(self.matrix[self.index[u], self.index[v]])

    def row(self, u: Node) -> np.ndarray:
        """The full distance vector from ``u`` (aligned with ``self.nodes``)."""
        return self.matrix[self.index[u]]

    def finite_pairs(self) -> int:
        """Number of unordered connected pairs (excluding self-pairs)."""
        finite = np.isfinite(self.matrix).sum() - len(self.nodes)
        return int(finite) // 2


def _distance_row(
    graph: Graph, universe: Sequence[Node], index: Dict[Node, int],
    weighted: bool, i: int,
) -> np.ndarray:
    """One SSSP row of the APSP matrix (the unit of parallel work)."""
    row = np.full(len(universe), np.inf, dtype=np.float32)
    row[i] = 0.0
    u = universe[i]
    if u not in graph:
        return row
    dist = (
        dijkstra_distances(graph, u) if weighted else bfs_distances(graph, u)
    )
    for v, d in dist.items():
        j = index.get(v)
        if j is not None:
            row[j] = d
    return row


def _apsp_row_task(i: int) -> np.ndarray:
    """Worker task: row ``i`` against the installed snapshot state."""
    state = worker_state()
    return _distance_row(
        state["graph"], state["universe"], state["index"], state["weighted"], i
    )


def all_pairs_distances(
    graph: Graph,
    nodes: Optional[Iterable[Node]] = None,
    workers: int = 1,
) -> DistanceMatrix:
    """Exact APSP by repeated SSSP (BFS if unweighted, Dijkstra otherwise).

    Parameters
    ----------
    graph:
        The graph to measure.
    nodes:
        Optional node universe for the matrix rows/columns.  Nodes not in
        ``graph`` get an all-``inf`` row.  This supports measuring ``G_t2``
        distances restricted to ``G_t1``'s node set, which is what the
        converging-pairs ground truth needs.
    workers:
        Process-pool size for the row fan-out (1 = serial).  Each worker
        deserialises the graph once; the matrix is bit-identical at any
        worker count.
    """
    universe = list(nodes) if nodes is not None else list(graph.nodes())
    index = {u: i for i, u in enumerate(universe)}
    n = len(universe)
    weighted = graph.is_weighted()
    if workers > 1 and n:
        executor = ParallelExecutor(
            workers,
            state={
                "graph": graph, "universe": universe,
                "index": index, "weighted": weighted,
            },
        )
        rows = executor.map(_apsp_row_task, range(n), unit="apsp.rows")
        matrix = np.stack(rows)
    else:
        matrix = np.full((n, n), np.inf, dtype=np.float32)
        for i in range(n):
            matrix[i] = _distance_row(graph, universe, index, weighted, i)
    return DistanceMatrix(universe, matrix)


def eccentricities(graph: Graph) -> Dict[Node, float]:
    """Eccentricity of every node *within its component*.

    The eccentricity of ``u`` is the largest finite distance from ``u``.
    Isolated nodes get 0.
    """
    ecc: Dict[Node, float] = {}
    weighted = graph.is_weighted()
    for u in graph.nodes():
        dist = (
            dijkstra_distances(graph, u) if weighted else bfs_distances(graph, u)
        )
        ecc[u] = max(dist.values()) if len(dist) > 1 else 0.0
    return ecc


def diameter(graph: Graph) -> float:
    """Largest finite shortest-path distance in the graph.

    For disconnected graphs this is the maximum over components (the
    convention the paper's Table 2 uses — its graphs have small
    disconnected fringes).  Returns 0 for empty/edgeless graphs.
    """
    if graph.num_nodes == 0:
        return 0.0
    ecc = eccentricities(graph)
    return max(ecc.values())


def average_distance(graph: Graph) -> float:
    """Mean distance over connected unordered pairs (0 if no such pairs)."""
    total = 0.0
    count = 0
    weighted = graph.is_weighted()
    for u in graph.nodes():
        dist = (
            dijkstra_distances(graph, u) if weighted else bfs_distances(graph, u)
        )
        for v, d in dist.items():
            if v != u:
                total += d
                count += 1
    if count == 0:
        return 0.0
    return total / count  # each unordered pair counted twice; ratio unchanged
