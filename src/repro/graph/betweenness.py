"""Brandes betweenness centrality (node and edge variants).

The Incidence family of baselines from Laxman & al. [14] ranks active
nodes by the *importance* of their new incident edges — an estimate of
edge betweenness built from sampled shortest-path trees.  The paper's
evaluation grants that baseline the **exact** edge betweenness ("giving an
advantage to the Incidence algorithm"); we therefore implement exact
Brandes for both nodes and edges, plus the sampled-pivot approximation for
completeness and for the ablation benchmarks.

Reference: U. Brandes, "A Faster Algorithm for Betweenness Centrality",
J. Math. Sociol. 25(2), 2001.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph

Node = Hashable
EdgeKey = Tuple[Node, Node]


def _edge_key(u: Node, v: Node) -> EdgeKey:
    """Canonical (sorted) key for an undirected edge.

    Sorting uses ``repr`` as a total-order fallback so heterogeneous node
    types never raise; homogeneous int/str graphs sort naturally.
    """
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def _brandes_accumulate(
    graph: Graph,
    sources: Iterable[Node],
    want_nodes: bool,
    want_edges: bool,
) -> Tuple[Dict[Node, float], Dict[EdgeKey, float]]:
    """Shared Brandes accumulation over a set of source pivots."""
    node_bc: Dict[Node, float] = {u: 0.0 for u in graph.nodes()}
    edge_bc: Dict[EdgeKey, float] = {}
    if want_edges:
        edge_bc = {_edge_key(u, v): 0.0 for u, v in graph.edges()}

    for s in sources:
        # Single-source shortest-path DAG via BFS (unweighted).
        stack: List[Node] = []
        pred: Dict[Node, List[Node]] = {}
        sigma: Dict[Node, float] = {s: 1.0}
        dist: Dict[Node, int] = {s: 0}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            stack.append(u)
            du = dist[u]
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = du + 1
                    queue.append(v)
                if dist[v] == du + 1:
                    sigma[v] = sigma.get(v, 0.0) + sigma[u]
                    pred.setdefault(v, []).append(u)
        # Back-propagation of dependencies.
        delta: Dict[Node, float] = {u: 0.0 for u in stack}
        while stack:
            w = stack.pop()
            coeff = (1.0 + delta[w]) / sigma[w]
            for u in pred.get(w, ()):
                contrib = sigma[u] * coeff
                if want_edges:
                    edge_bc[_edge_key(u, w)] += contrib
                delta[u] += contrib
            if want_nodes and w != s:
                node_bc[w] += delta[w]
    return node_bc, edge_bc


def _normalise_undirected(bc: Dict, factor: float) -> None:
    for key in bc:
        bc[key] *= factor


def node_betweenness(graph: Graph, normalized: bool = True) -> Dict[Node, float]:
    """Exact node betweenness centrality (unweighted shortest paths).

    With ``normalized=True`` values are divided by ``(n-1)(n-2)`` (the
    number of ordered pairs excluding the node), matching the common
    undirected-graph convention.
    """
    bc, _ = _brandes_accumulate(graph, graph.nodes(), True, False)
    n = graph.num_nodes
    # Each unordered pair is accumulated from both endpoints as sources.
    scale = 0.5
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    _normalise_undirected(bc, scale)
    return bc


def edge_betweenness(graph: Graph, normalized: bool = True) -> Dict[EdgeKey, float]:
    """Exact edge betweenness centrality (unweighted shortest paths).

    Keys are canonical (sorted) edge tuples.  With ``normalized=True``
    values are divided by ``n(n-1)/2``.
    """
    _, bc = _brandes_accumulate(graph, graph.nodes(), False, True)
    n = graph.num_nodes
    scale = 0.5
    if normalized and n > 1:
        scale /= n * (n - 1) / 2.0
    _normalise_undirected(bc, scale)
    return bc


def approximate_edge_betweenness(
    graph: Graph,
    num_pivots: int,
    rng: Optional[np.random.Generator] = None,
    normalized: bool = True,
) -> Dict[EdgeKey, float]:
    """Sampled-pivot edge betweenness (the estimator [14] actually uses).

    Accumulates Brandes dependencies from ``num_pivots`` uniformly sampled
    source nodes and rescales by ``n / num_pivots``, the standard unbiased
    pivot estimator.  With ``num_pivots >= n`` this degrades gracefully to
    the exact computation.
    """
    if num_pivots <= 0:
        raise ValueError(f"num_pivots must be positive, got {num_pivots}")
    # Seeded default: an rng-less call must still be reproducible
    rng = rng if rng is not None else np.random.default_rng(0)
    nodes = list(graph.nodes())
    n = len(nodes)
    if num_pivots >= n:
        return edge_betweenness(graph, normalized=normalized)
    pivot_idx = rng.choice(n, size=num_pivots, replace=False)
    pivots = [nodes[i] for i in pivot_idx]
    _, bc = _brandes_accumulate(graph, pivots, False, True)
    scale = 0.5 * (n / num_pivots)
    if normalized and n > 1:
        scale /= n * (n - 1) / 2.0
    _normalise_undirected(bc, scale)
    return bc
