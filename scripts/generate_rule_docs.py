"""Regenerate the rule table in docs/static-analysis.md from the registry.

Only the section between the BEGIN/END markers is generated — the
surrounding prose stays hand-written.  ``generate()`` returns the full
file content with a fresh table spliced in, which is the contract
``scripts/check_docs_drift.py`` expects: a rule added to the registry
without regenerating the docs fails CI.

Usage::

    PYTHONPATH=src python scripts/generate_rule_docs.py          # stdout
    PYTHONPATH=src python scripts/check_docs_drift.py --fix      # rewrite
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOC_PATH = REPO_ROOT / "docs" / "static-analysis.md"

BEGIN_MARKER = (
    "<!-- BEGIN GENERATED RULE TABLE "
    "(scripts/generate_rule_docs.py; edit the registry, not this table) -->"
)
END_MARKER = "<!-- END GENERATED RULE TABLE -->"


def rule_table() -> str:
    """The markdown table for every registered rule, sorted by code."""
    from repro.lint.registry import all_rules

    lines = [
        "| code | name | scope | invariant protected |",
        "|------|------|-------|---------------------|",
    ]
    for r in all_rules():
        invariant = " ".join(r.invariant.split()).replace("|", "\\|")
        lines.append(
            f"| {r.code} | `{r.name}` | {r.scope} | {invariant} |"
        )
    return "\n".join(lines)


def generate() -> str:
    """docs/static-analysis.md content with a regenerated rule table."""
    text = DOC_PATH.read_text(encoding="utf-8")
    if BEGIN_MARKER not in text or END_MARKER not in text:
        raise SystemExit(
            f"{DOC_PATH}: rule-table markers missing; restore "
            f"{BEGIN_MARKER!r} and {END_MARKER!r}"
        )
    before, _, rest = text.partition(BEGIN_MARKER)
    _, _, after = rest.partition(END_MARKER)
    return (
        before + BEGIN_MARKER + "\n" + rule_table() + "\n" + END_MARKER + after
    )


if __name__ == "__main__":
    sys.stdout.write(generate())
