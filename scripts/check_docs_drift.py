"""Fail CI when a generated doc no longer matches its generator.

Regenerates each tracked artefact in memory and diffs it against the
committed file — the committed copy must be byte-identical to what the
generator produces from the live package, otherwise the docs have
drifted and the commit should have regenerated them.

Usage::

    PYTHONPATH=src python scripts/check_docs_drift.py         # check
    PYTHONPATH=src python scripts/check_docs_drift.py --fix   # regenerate
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))
sys.path.insert(0, str(REPO_ROOT / "src"))

import generate_api_docs  # noqa: E402  (path set up above)
import generate_rule_docs  # noqa: E402

#: ``committed file -> zero-argument generator returning its content``.
TRACKED = {
    REPO_ROOT / "docs" / "api.md": generate_api_docs.generate,
    REPO_ROOT / "docs" / "static-analysis.md": generate_rule_docs.generate,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fix", action="store_true",
        help="rewrite drifted files instead of failing",
    )
    args = parser.parse_args(argv)
    drifted = 0
    for path, generate in TRACKED.items():
        expected = generate()
        current = path.read_text(encoding="utf-8") if path.exists() else ""
        if current == expected:
            print(f"ok: {path.relative_to(REPO_ROOT)}")
            continue
        if args.fix:
            path.write_text(expected, encoding="utf-8")
            print(f"rewrote: {path.relative_to(REPO_ROOT)}")
            continue
        drifted += 1
        print(f"DRIFT: {path.relative_to(REPO_ROOT)} is stale", file=sys.stderr)
        diff = difflib.unified_diff(
            current.splitlines(keepends=True),
            expected.splitlines(keepends=True),
            fromfile=f"committed/{path.name}",
            tofile=f"generated/{path.name}",
        )
        sys.stderr.writelines(list(diff)[:40])
    if drifted:
        print(
            f"{drifted} generated doc(s) drifted; run "
            f"'PYTHONPATH=src python scripts/check_docs_drift.py --fix' "
            f"and commit the result",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
