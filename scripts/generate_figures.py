"""Render the figure experiments as SVG files under ``figures/``.

Produces one SVG per dataset for Figure 1 (landmark-family budget
curves) and Figure 3 (classifiers vs best single algorithm), and a
two-panel pair for Figure 2 (candidate quality on the Facebook-like
dataset), using the dependency-free renderer in
:mod:`repro.experiments.svgplot`.

Usage::

    python scripts/generate_figures.py [--scale 0.5] [--out figures/]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import ExperimentConfig, figure1, figure2, figure3
from repro.experiments.svgplot import line_chart


def generate(scale: float, out_dir: Path) -> list:
    config = ExperimentConfig(scale=scale)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []

    def emit(name: str, svg: str) -> None:
        path = out_dir / name
        path.write_text(svg, encoding="utf-8")
        written.append(path)
        print(f"wrote {path}")

    f1 = figure1.run(config)
    for dataset, series in f1.curves.items():
        emit(
            f"figure1_{dataset}.svg",
            line_chart(
                {name: curve for name, curve in series.items()},
                title=f"Figure 1 ({dataset}): coverage vs budget",
                x_label="budget m",
                y_label="coverage",
            ),
        )

    f2 = figure2.run(config)
    emit(
        "figure2a_endpoints.svg",
        line_chart(
            f2.endpoint_curves,
            title=f"Figure 2a ({f2.dataset}): candidates in G^p_k",
            x_label="budget m",
            y_label="fraction of candidates",
        ),
    )
    emit(
        "figure2b_cover.svg",
        line_chart(
            f2.cover_curves,
            title=f"Figure 2b ({f2.dataset}): candidates in greedy cover",
            x_label="budget m",
            y_label="fraction of candidates",
        ),
    )

    f3 = figure3.run(config)
    for dataset, series in f3.curves.items():
        emit(
            f"figure3_{dataset}.svg",
            line_chart(
                series,
                title=(
                    f"Figure 3 ({dataset}): classifiers vs "
                    f"{f3.best_algorithm[dataset]}"
                ),
                x_label="budget m",
                y_label="coverage",
            ),
        )
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "figures",
    )
    args = parser.parse_args(argv)
    written = generate(args.scale, args.out)
    print(f"{len(written)} figures written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
