"""Validate the committed ``BENCH_*.json`` benchmark baselines.

Discovers every ``BENCH_*.json`` at the repository root (or takes
explicit paths), validates each file's schema and host provenance, and
enforces a per-schema speedup floor on the best recorded speedup:

* ``bench-parallel/v2`` (``BENCH_parallel.json``) — floor 1.3× on the
  best worker count, and the committed baseline **must** have been
  measured on a multi-core host (``cpus >= 2``): the shared-memory
  arena + bit-parallel multi-source BFS make the pool a genuine win, so
  a single-core baseline is a provenance failure, not an exemption.
  Also validates the shm provenance counters (segment bytes published,
  pickled bytes avoided) and the bit-parallel batch speedup.  The v1
  schema (which skipped the floor on single-core hosts) is retired —
  see CHANGELOG.md for the migration.
* ``bench-incremental/v1`` (``BENCH_incremental.json``) — floor 1.3× on
  the best dataset.  The win is algorithmic, so it must exist on any
  host.
* ``bench-prune/v1`` (``BENCH_prune.json``) — floor 1.5× on the best
  dataset/engine cell of the Δ-aware pruned top-k pass.  Also
  algorithmic: skipped and level-cut traversals save work on any host.
* ``bench-service/v1`` (``BENCH_service.json``) — floor 1.5× on the
  best of the query service's cached-answer and coalesced-burst
  speedups over a cold compute; serving a version-keyed cached answer
  must beat recomputing it on any host.  Also validates the service's
  latency percentiles, the one-computation coalescing invariant, and
  that the burst queue depth never exceeded the admission bound.

``--min-speedup`` overrides every schema's default floor (the CI
bench-gate uses it to re-check freshly regenerated smoke baselines);
``--no-floor`` validates structure and provenance only.

Usage::

    python scripts/check_bench.py [paths ...]
                                  [--min-speedup X | --no-floor]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

ROOT = Path(__file__).resolve().parent.parent

_HOST_FIELDS = ("cpus", "platform", "start_method")


def _check_parallel(baseline: dict) -> List[str]:
    problems = []
    timings = baseline.get("timings_s")
    if not isinstance(timings, dict) or "workers1" not in timings:
        problems.append("must time workers=1")
    elif any(not isinstance(t, (int, float)) or t <= 0
             for t in timings.values()):
        problems.append("timings must be positive")
    elif not any(key != "workers1" for key in timings):
        problems.append("must time at least one multi-worker pool")
    shm = baseline.get("shm")
    if not isinstance(shm, dict):
        problems.append("shm provenance must be an object")
    else:
        # Zero-copy provenance: the segment actually published, and the
        # per-worker pickled graph state it replaced.
        for field in ("segment_bytes", "pickled_bytes_avoided"):
            value = shm.get(field)
            if not isinstance(value, int) or value <= 0:
                problems.append(f"shm: bad {field}")
    batch = baseline.get("batch")
    if not isinstance(batch, dict):
        problems.append("batch provenance must be an object")
    else:
        width = batch.get("width")
        if not isinstance(width, int) or width < 1:
            problems.append("batch: bad width")
        bspeed = batch.get("speedup")
        if not isinstance(bspeed, (int, float)) or bspeed <= 0:
            problems.append("batch: bad speedup")
    return problems


def _check_incremental(baseline: dict) -> List[str]:
    problems = []
    datasets = baseline.get("datasets")
    if not isinstance(datasets, dict) or not datasets:
        return ["must record at least one dataset"]
    for name, row in datasets.items():
        for field in ("full_s", "incremental_s", "speedup"):
            value = row.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"dataset {name!r}: bad {field}")
    return problems


def _check_prune(baseline: dict) -> List[str]:
    problems = []
    datasets = baseline.get("datasets")
    if not isinstance(datasets, dict) or not datasets:
        return ["must record at least one dataset"]
    for name, row in datasets.items():
        engines = row.get("engines")
        if not isinstance(engines, dict) or not engines:
            problems.append(f"dataset {name!r}: must record engines")
            continue
        for engine, cell in engines.items():
            where = f"dataset {name!r} engine {engine!r}"
            for field in ("full_s", "pruned_s", "speedup"):
                value = cell.get(field)
                if not isinstance(value, (int, float)) or value <= 0:
                    problems.append(f"{where}: bad {field}")
            # The counters make every speedup attributable: a baseline
            # that neither skipped nor cut anything measured nothing.
            for field in ("skipped", "cut"):
                value = cell.get(field)
                if not isinstance(value, int) or value < 0:
                    problems.append(f"{where}: bad {field}")
    return problems


def _check_service(baseline: dict) -> List[str]:
    problems = []
    latency = baseline.get("latency_ms")
    if not isinstance(latency, dict):
        problems.append("latency_ms must be an object")
    else:
        p50, p99 = latency.get("p50"), latency.get("p99")
        for name, value in (("p50", p50), ("p99", p99)):
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"latency_ms: bad {name}")
        if (isinstance(p50, (int, float)) and isinstance(p99, (int, float))
                and p99 < p50):
            problems.append("latency_ms: p99 below p50")
    coalescing = baseline.get("coalescing")
    if not isinstance(coalescing, dict):
        problems.append("coalescing must be an object")
    else:
        hit_rate = coalescing.get("hit_rate")
        if not isinstance(hit_rate, (int, float)) or not 0 <= hit_rate <= 1:
            problems.append("coalescing: hit_rate must be in [0, 1]")
        if coalescing.get("computations") != 1:
            problems.append(
                "coalescing: an identical-query burst must collapse "
                "to exactly one computation"
            )
    burst = baseline.get("burst")
    if not isinstance(burst, dict):
        problems.append("burst must be an object")
    else:
        shed_rate = burst.get("shed_rate")
        if not isinstance(shed_rate, (int, float)) or not 0 <= shed_rate <= 1:
            problems.append("burst: shed_rate must be in [0, 1]")
        depth, capacity = burst.get("max_depth"), burst.get("capacity")
        for name, value in (("max_depth", depth), ("capacity", capacity),
                            ("served", burst.get("served")),
                            ("rejected", burst.get("rejected"))):
            if not isinstance(value, int) or value < 0:
                problems.append(f"burst: bad {name}")
        if (isinstance(depth, int) and isinstance(capacity, int)
                and depth > capacity):
            problems.append(
                "burst: queue depth exceeded the admission bound"
            )
    return problems


@dataclass(frozen=True)
class SchemaSpec:
    """What one benchmark-baseline schema requires."""

    required: tuple
    default_floor: float
    #: Pool speedups only exist on multi-core hardware, so schemas that
    #: measure them must be *recorded* there: a floor-enforced check of
    #: a 1-cpu baseline fails outright instead of being skipped.
    require_multicore: bool
    extra_check: Callable[[dict], List[str]]


SCHEMAS: Dict[str, SchemaSpec] = {
    "bench-parallel/v2": SchemaSpec(
        required=("schema", "dataset", "scale", "nodes", "edges", "host",
                  "timings_s", "speedup", "shm", "batch"),
        default_floor=1.3,
        require_multicore=True,
        extra_check=_check_parallel,
    ),
    "bench-incremental/v1": SchemaSpec(
        required=("schema", "scale", "host", "datasets", "speedup"),
        default_floor=1.3,
        require_multicore=False,
        extra_check=_check_incremental,
    ),
    "bench-prune/v1": SchemaSpec(
        required=("schema", "scale", "k", "host", "datasets", "speedup"),
        default_floor=1.5,
        require_multicore=False,
        extra_check=_check_prune,
    ),
    "bench-service/v1": SchemaSpec(
        required=("schema", "scale", "host", "latency_ms", "coalescing",
                  "burst", "speedup"),
        default_floor=1.5,
        require_multicore=False,
        extra_check=_check_service,
    ),
}


def discover(root: Path = ROOT) -> List[Path]:
    """Every committed benchmark baseline at the repository root."""
    return sorted(root.glob("BENCH_*.json"))


def check(path: Path, min_speedup: Optional[float],
          use_default_floor: bool) -> int:
    """Validate one baseline; returns 0 when clean, 1 otherwise."""
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"{path} is missing", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"{path} is not valid JSON: {exc}", file=sys.stderr)
        return 1

    spec = SCHEMAS.get(baseline.get("schema"))
    if spec is None:
        known = ", ".join(sorted(SCHEMAS))
        print(f"{path.name}: unknown schema {baseline.get('schema')!r} "
              f"(known: {known})", file=sys.stderr)
        return 1

    problems = [f"lacks field {f!r}" for f in spec.required
                if f not in baseline]
    host = baseline.get("host")
    if not isinstance(host, dict):
        problems.append("host provenance must be an object")
    else:
        problems += [f"host provenance lacks {f!r}" for f in _HOST_FIELDS
                     if f not in host]
    speedup = baseline.get("speedup")
    if not isinstance(speedup, dict) or not speedup:
        problems.append("must record at least one speedup")
    elif any(not isinstance(s, (int, float)) or s <= 0
             for s in speedup.values()):
        problems.append("speedups must be positive")
    if not problems:
        problems += spec.extra_check(baseline)
    if problems:
        for problem in problems:
            print(f"{path.name}: {problem}", file=sys.stderr)
        return 1

    cpus = int(host.get("cpus") or 1)
    best = max(speedup.values())
    floor = min_speedup if min_speedup is not None else (
        spec.default_floor if use_default_floor else None
    )
    print(
        f"{path.name}: {baseline['schema']} @ scale {baseline['scale']}, "
        f"recorded on {cpus} cpu(s), best speedup {best:.2f}x"
        + (f" (floor {floor:.2f}x)" if floor is not None else "")
    )
    if floor is None:
        return 0
    if spec.require_multicore and cpus < 2:
        print(
            f"{path.name}: baseline was recorded on a single-core host; "
            f"{baseline['schema']} requires a committed baseline measured "
            f"with cpus >= 2 (regenerate on a multi-core runner)",
            file=sys.stderr,
        )
        return 1
    if best < floor:
        print(
            f"{path.name}: best speedup {best:.2f}x is below the "
            f"required {floor:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="baselines to check (default: every BENCH_*.json at the "
             "repository root)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="override every schema's default floor",
    )
    parser.add_argument(
        "--no-floor", action="store_true",
        help="validate structure and provenance only",
    )
    args = parser.parse_args(argv)
    if args.no_floor and args.min_speedup is not None:
        parser.error("--no-floor and --min-speedup are mutually exclusive")
    paths = args.paths or discover()
    if not paths:
        print("no BENCH_*.json baselines found", file=sys.stderr)
        return 1
    return max(
        check(p, args.min_speedup, use_default_floor=not args.no_floor)
        for p in paths
    )


if __name__ == "__main__":
    sys.exit(main())
