"""Refresh benchmarks/expected_shapes.json — the regression bands.

The reproduction's value is that its findings are *stable*: a refactor
that silently halves SumDiff's coverage is a bug even if every unit test
passes.  This script runs the Table 5 experiment at the benchmark scale
and records each algorithm's average coverage with a tolerance band;
``benchmarks/test_regression_bands.py`` then fails any run that drifts
outside the bands.

Regenerate after *deliberate* changes to the generators, selectors, or
experiment configuration::

    python scripts/update_regression_bands.py [--scale 0.5] [--margin 0.12]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.experiments import ExperimentConfig, table5

DEFAULT_OUT = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "expected_shapes.json"
)


def compute_bands(scale: float, margin: float) -> dict:
    config = ExperimentConfig(scale=scale)
    result = table5.run(config)
    bands = {}
    for algo in result.algorithms:
        values = [
            result.coverage[(algo, ds, off)]
            for ds, off, _, _ in result.columns
        ]
        mean = float(np.mean(values))
        bands[algo] = {
            "mean": round(mean, 4),
            "low": round(max(0.0, mean - margin), 4),
            "high": round(min(1.0, mean + margin), 4),
        }
    return {
        "scale": scale,
        "budget": config.budget,
        "seed": config.seed,
        "margin": margin,
        "average_coverage": bands,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--margin", type=float, default=0.12,
        help="half-width of the accepted band around each mean",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    bands = compute_bands(args.scale, args.margin)
    args.out.write_text(json.dumps(bands, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
