"""Validate BENCH_parallel.json — the parallel-speedup baseline.

Checks that the committed baseline parses, carries the expected schema
and fields, and (optionally) that the recorded speedup clears a floor.
The floor is only enforced for baselines recorded on a multi-core host:
a single-core container can at best tie serial execution and pays pool
overhead, so its honest sub-1.0 numbers are provenance, not regressions.

Usage::

    python scripts/check_bench_parallel.py [--path BENCH_parallel.json]
                                           [--min-speedup 1.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

REQUIRED_FIELDS = (
    "schema", "dataset", "scale", "nodes", "edges", "host",
    "timings_s", "speedup",
)


def check(path: Path, min_speedup: float | None) -> int:
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"{path} is missing", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"{path} is not valid JSON: {exc}", file=sys.stderr)
        return 1

    missing = [f for f in REQUIRED_FIELDS if f not in baseline]
    if missing:
        print(f"{path} lacks fields: {', '.join(missing)}", file=sys.stderr)
        return 1
    if baseline["schema"] != "bench-parallel/v1":
        print(f"unexpected schema {baseline['schema']!r}", file=sys.stderr)
        return 1
    timings = baseline["timings_s"]
    if "workers1" not in timings or not baseline["speedup"]:
        print("baseline must time workers=1 and at least one parallel "
              "worker count", file=sys.stderr)
        return 1
    if any(t <= 0 for t in timings.values()):
        print("timings must be positive", file=sys.stderr)
        return 1

    cpus = int(baseline["host"].get("cpus") or 1)
    best = max(baseline["speedup"].values())
    print(
        f"{path.name}: {baseline['dataset']} @ scale {baseline['scale']}, "
        f"recorded on {cpus} cpu(s), best speedup {best:.2f}x"
    )
    if min_speedup is not None:
        if cpus < 2:
            print(
                f"single-core host recorded the baseline; "
                f"skipping the {min_speedup:.2f}x floor"
            )
        elif best < min_speedup:
            print(
                f"best speedup {best:.2f}x is below the required "
                f"{min_speedup:.2f}x floor",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail if the best recorded speedup is below this "
             "(skipped for baselines recorded on a single-core host)",
    )
    args = parser.parse_args(argv)
    return check(args.path, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
