"""Latency-weighted route monitoring (the weighted generalisation).

The problem definition covers weighted graphs: distances are Dijkstra
path costs and Δ is fractional.  This example monitors the
latency-weighted AS analogue — core links fast, stub tails slow — and
surfaces the node pairs whose end-to-end latency collapsed the most
when new peering links appeared.

Run with::

    python examples/weighted_routing.py
"""

from repro import (
    candidate_pair_coverage,
    datasets,
    find_top_k_converging_pairs,
    get_selector,
    top_k_converging_pairs,
)


def main() -> None:
    temporal = datasets.load("internet-weighted", scale=0.3)
    g1, g2 = datasets.eval_snapshots(temporal)
    print(
        f"weighted AS topology: {g1.num_nodes} nodes, "
        f"{g1.num_edges} -> {g2.num_edges} links (weights = latencies)"
    )

    # With continuous latencies, ties are essentially impossible, so a
    # plain top-k ground truth is already unique.
    k = 25
    truth = top_k_converging_pairs(g1, g2, k=k)
    print(f"\nsharpest latency collapses (exact, Dijkstra):")
    for p in truth[:5]:
        print(
            f"  AS{p.u} <-> AS{p.v}: {p.d1:.1f}ms -> {p.d2:.1f}ms "
            f"(saved {p.delta:.1f}ms)"
        )

    # Same budgeted machinery — selectors are distance-agnostic.
    m = 30
    result = find_top_k_converging_pairs(
        g1, g2, k=k, m=m, selector=get_selector("MMSD"), seed=4
    )
    cov = candidate_pair_coverage(result.candidates, truth)
    print(
        f"\nbudgeted run (m={m}, {result.budget.spent} Dijkstra "
        f"computations): {100 * cov:.1f}% of the top-{k} found"
    )
    if result.pairs:
        best = result.pairs[0]
        print(
            f"best finding: AS{best.u} <-> AS{best.v}, "
            f"{best.d1:.1f}ms -> {best.d2:.1f}ms"
        )


if __name__ == "__main__":
    main()
