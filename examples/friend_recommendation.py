"""Friend recommendation from converging pairs (paper intro scenario).

"In social networking sites such as Facebook or LinkedIn, if two distant
users come closer over time, this could imply the appearance of similar
interests or activities between them ... this further knowledge can help
in making more suitable friendship recommendations."

This example monitors a growing friendship graph between two observation
points, surfaces the user pairs whose network distance collapsed the
most, and turns the not-yet-adjacent ones into recommendation candidates,
annotated with their current distance and number of mutual friends.

Run with::

    python examples/friend_recommendation.py
"""

from repro import datasets, find_top_k_converging_pairs, get_selector


def mutual_friends(graph, u, v) -> int:
    """Number of common neighbors of two users in a snapshot."""
    return len(set(graph.neighbors(u)) & set(graph.neighbors(v)))


def main() -> None:
    temporal = datasets.load("facebook", scale=0.4)
    g1, g2 = datasets.eval_snapshots(temporal)
    print(
        f"friendship network: {g1.num_edges} -> {g2.num_edges} friendships "
        f"between observations"
    )

    # Budgeted detection: SumDiff is the paper's most reliable
    # single-feature selector on Facebook-like graphs.
    result = find_top_k_converging_pairs(
        g1, g2, k=40, m=25, selector=get_selector("SumDiff"), seed=3
    )

    # Converging but still unconnected pairs are recommendation material:
    # their communities are merging although they never interacted.
    recommendations = [
        p for p in result.pairs if not g2.has_edge(p.u, p.v)
    ]
    print(
        f"\nfound {len(result.pairs)} converging pairs with "
        f"{result.budget.spent} shortest-path computations; "
        f"{len(recommendations)} are not yet friends:\n"
    )
    print(f"{'user pair':>14}  {'dist before':>11}  {'dist now':>8}  "
          f"{'Δ':>3}  {'mutual friends':>14}")
    for p in recommendations[:10]:
        print(
            f"{f'({p.u}, {p.v})':>14}  {p.d1:>11g}  {p.d2:>8g}  "
            f"{p.delta:>3g}  {mutual_friends(g2, p.u, p.v):>14}"
        )

    if recommendations:
        top = recommendations[0]
        print(
            f"\nstrongest signal: users {top.u} and {top.v} went from "
            f"{top.d1:g} hops apart to {top.d2:g} — their circles merged."
        )


if __name__ == "__main__":
    main()
