"""Monitoring route-length collapses in an AS-level Internet topology.

The paper's Internet-links dataset is the AS-level connectivity graph;
a sharp shortest-path decrease between two autonomous systems usually
means a new peering or transit link rerouted a whole region.  Operators
cannot recompute all-pairs paths between measurement epochs, which is
precisely the budgeted regime: with SSSP probes from a handful of
vantage points, recover the most-affected AS pairs.

This example also shows the budget ledger: every probe is accounted for,
and exceeding the budget raises instead of silently overspending.

Run with::

    python examples/infrastructure_monitoring.py
"""

from repro import (
    BudgetExceededError,
    SPBudget,
    datasets,
    find_top_k_converging_pairs,
    get_selector,
)


def main() -> None:
    temporal = datasets.load("internet", scale=0.5)
    g1, g2 = datasets.eval_snapshots(temporal)
    n = g1.num_nodes
    m = max(10, n // 50)  # 2% of the ASes as probe sources
    print(
        f"AS topology: {n} ASes, {g1.num_edges} -> {g2.num_edges} links; "
        f"probe budget m = {m} ({100 * m / n:.1f}% of ASes)"
    )

    # MASD: peripheral (MaxAvg) landmark ASes + SumDiff scoring — the
    # periphery is where routing changes bite hardest.
    result = find_top_k_converging_pairs(
        g1, g2, k=15, m=m, selector=get_selector("MASD"), seed=7
    )
    print(f"\nbudget ledger: {result.budget.by_phase()} "
          f"(total {result.budget.spent} / limit {result.budget.limit})")

    print("\nAS pairs with the sharpest route collapse:")
    for p in result.pairs[:8]:
        print(
            f"  AS{p.u:<6} <-> AS{p.v:<6}  {p.d1:g} hops -> {p.d2:g} hops "
            f"(Δ = {p.delta:g})"
        )

    # The budget is a hard contract: a probe past the limit raises.
    exhausted = SPBudget(limit=1)
    exhausted.charge("probe", "g2", 1)
    try:
        exhausted.charge("probe", "g2", 1)
    except BudgetExceededError as exc:
        print(f"\nbudget enforcement: {exc}")


if __name__ == "__main__":
    main()
