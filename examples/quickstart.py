"""Quickstart: find converging pairs on a budget.

Builds a small temporal graph, computes the exact top-k converging pairs
(the expensive ground truth), then re-finds them with the MMSD hybrid
selector under a budget of just a few percent of the nodes — the paper's
headline workflow.

Run with::

    python examples/quickstart.py
"""

from repro import (
    candidate_pair_coverage,
    converging_pairs_at_threshold,
    datasets,
    find_top_k_converging_pairs,
    get_selector,
)
from repro.core.pairs import delta_histogram


def main() -> None:
    # 1. A temporal graph: the "facebook" catalog entry is a synthetic
    #    friendship stream with community structure (see repro.datasets).
    temporal = datasets.load("facebook", scale=0.3)
    g1, g2 = datasets.eval_snapshots(temporal)  # 80% / 100% of the edges
    print(f"snapshot t1: {g1.num_nodes} nodes, {g1.num_edges} edges")
    print(f"snapshot t2: {g2.num_nodes} nodes, {g2.num_edges} edges")

    # 2. Ground truth (all-pairs shortest paths — only feasible offline).
    #    Like the paper, pick k via a δ threshold so the top-k set is
    #    unique: every pair whose distance shrank by at least Δmax − 1.
    hist = delta_histogram(g1, g2)
    delta = max(d for d in hist if d > 0) - 1
    truth = converging_pairs_at_threshold(g1, g2, delta)
    k = len(truth)
    print(f"\nexact top-{k} converging pairs (Δ = d_t1 − d_t2 >= {delta:g}):")
    for pair in truth[:5]:
        print(
            f"  ({pair.u}, {pair.v}): distance {pair.d1:g} -> {pair.d2:g}"
            f"  (Δ = {pair.delta:g})"
        )
    print(f"  ... and {len(truth) - 5} more")

    # 3. The budgeted algorithm: m = 30 candidates means 2m = 60 SSSP
    #    computations in total — versus one per node for the ground truth.
    m = 30
    selector = get_selector("MASD")  # MaxAvg landmarks + SumDiff scoring
    result = find_top_k_converging_pairs(
        g1, g2, k=k, m=m, selector=selector, seed=2
    )
    cov = candidate_pair_coverage(result.candidates, truth)
    print(f"\nbudgeted run (m={m}, {result.budget.spent} SSSPs total):")
    print(f"  budget split by phase: {result.budget.by_phase()}")
    print(f"  coverage of the true top-{k}: {100 * cov:.1f}%")
    print(f"  best pair found: {result.pairs[0]}")


if __name__ == "__main__":
    main()
