"""Classifier-driven monitoring of a co-authorship network.

DBLP-style scenario: research communities drift together as authors
co-publish across areas.  Instead of hand-picking a selection heuristic,
train the paper's classifiers on an *early* portion of the stream (20% to
40% of the edges) and let them nominate candidate authors on the current
snapshot pair — the local model knows this network, the global model has
also seen other network types.

Run with::

    python examples/collaboration_watch.py
"""

from repro import (
    candidate_pair_coverage,
    converging_pairs_at_threshold,
    datasets,
    find_top_k_converging_pairs,
)
from repro.core.pairs import delta_histogram
from repro.ml import train_global_classifier, train_local_classifier
from repro.selection import GlobalClassifierSelector, LocalClassifierSelector


def main() -> None:
    temporal = datasets.load("dblp", scale=0.5)

    # Train on the early stream (20%/40% snapshots) — no leakage into the
    # evaluation pair.
    local_model = train_local_classifier(temporal, seed=11)
    print(
        f"local model trained; positive class (greedy-cover members) = "
        f"{100 * local_model.positive_fraction:.1f}% of training nodes"
    )
    global_model = train_global_classifier(
        {name: datasets.load(name, scale=0.3) for name in datasets.dataset_names()},
        seed=11,
    )
    print("global model trained on all four catalog datasets")

    # Evaluation pair: 80% / 100% of the stream.
    g1, g2 = datasets.eval_snapshots(temporal)
    hist = delta_histogram(g1, g2)
    delta_max = max(d for d in hist if d > 0)
    truth = converging_pairs_at_threshold(g1, g2, max(1, delta_max - 1))
    print(
        f"\nground truth: {len(truth)} author pairs converged by "
        f"Δ >= {max(1, delta_max - 1):g} (Δmax = {delta_max:g})"
    )

    m = 30
    for label, selector in (
        ("L-Classifier", LocalClassifierSelector(local_model)),
        ("G-Classifier", GlobalClassifierSelector(global_model)),
    ):
        result = find_top_k_converging_pairs(
            g1, g2, k=len(truth), m=m, selector=selector, seed=2
        )
        cov = candidate_pair_coverage(result.candidates, truth)
        print(
            f"{label}: {100 * cov:.1f}% of converging author pairs found "
            f"with {result.budget.spent} SSSPs "
            f"({result.budget.by_phase()})"
        )

    print("\nstrongest convergence signals (local model run):")
    result = find_top_k_converging_pairs(
        g1, g2, k=5, m=m, selector=LocalClassifierSelector(local_model), seed=2
    )
    for p in result.pairs:
        print(
            f"  authors {p.u} and {p.v}: {p.d1:g} -> {p.d2:g} "
            f"(Δ = {p.delta:g})"
        )


if __name__ == "__main__":
    main()
