"""Continuous monitoring of a growing network (extension example).

Rather than one before/after comparison, watch a stream at regular
checkpoints: each window runs the budgeted detector against the previous
checkpoint, and nodes that keep turning up in converging pairs are the
persistently-drifting entities the paper's introduction motivates
(community joiners, coalition builders).

Run with::

    python examples/stream_monitoring.py
"""

from repro import datasets, get_selector
from repro.core.monitoring import ConvergenceMonitor


def main() -> None:
    temporal = datasets.load("dblp", scale=0.4)
    print(f"co-authorship stream: {temporal.num_events} edge events")

    monitor = ConvergenceMonitor(
        temporal,
        selector_factory=lambda: get_selector("SumDiff"),
        k=15,
        m=25,
        seed=5,
    )
    checkpoints = [0.5, 0.625, 0.75, 0.875, 1.0]
    reports = monitor.run(checkpoints)

    for report in reports:
        window = f"{report.start_fraction:.3f} -> {report.end_fraction:.3f}"
        best = report.pairs[0] if report.pairs else None
        headline = (
            f"best: {best.pair} (Δ = {best.delta:g})" if best else "quiet"
        )
        print(
            f"window {window}: {len(report.pairs)} converging pairs, "
            f"{report.sp_spent} SSSPs — {headline}"
        )

    print(f"\ntotal budget spent: {monitor.total_sp_spent()} SSSPs "
          f"across {len(reports)} windows")

    movers = monitor.recurrent_nodes(min_windows=2)
    print(f"persistently converging authors ({len(movers)}): "
          f"{', '.join(str(u) for u in movers[:10])}")


if __name__ == "__main__":
    main()
